"""Round-trip and merge properties of the compressed key machinery.

The delta kernels, key blocks, and v2 page format all rest on one claim:
encode→decode is *exact* for any int64 column (sortedness affects only the
compression ratio), and both kernel backends produce byte-identical
encodings. These properties pin that claim — including the gapped layout's
sentinel key (``GAP_SENTINEL`` = INT64_MAX) and demotion-adjacent edge
values — plus encode→decode→encode stability and the merge-on-encoded-runs
semantics (duplicate resolution by priority, tombstone handling,
whole-page pass-through).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.storage.compress import (
    KEY_BLOCK_HEADER,
    CompressedRun,
    RunPage,
    decode_key_block,
    encode_key_block,
    key_block_stats,
    merge_compressed_items,
    merge_compressed_runs,
)
from repro.storage.pages import (
    FLAG_COMPRESSED_KEYS,
    FLAG_COMPRESSED_VALUES,
    decode_leaf,
    decode_run,
    encode_leaf,
    encode_run,
    leaf_columns,
)

HAS_NUMPY = kernels.numpy_available()
requires_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not importable")

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

i64 = st.integers(min_value=INT64_MIN, max_value=INT64_MAX)
#: Gapped-layout edges: the sentinel itself, demotion neighbours, zero span.
i64_edges = st.sampled_from(
    [0, 1, -1, INT64_MAX, INT64_MIN, kernels.GAP_SENTINEL, kernels.GAP_SENTINEL - 1]
)
any_keys_st = st.lists(i64 | i64_edges, max_size=120)
sorted_keys_st = any_keys_st.map(sorted)


def _both(fn, *args):
    with kernels.use_backend("python"):
        py = fn(*args)
    with kernels.use_backend("numpy"):
        np_res = fn(*args)
    return py, np_res


# ----------------------------------------------------------------------
# delta kernels
# ----------------------------------------------------------------------
class TestDeltaKernels:
    @given(keys=sorted_keys_st)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_python(self, keys):
        with kernels.use_backend("python"):
            anchor, width, packed = kernels.delta_pack(keys)
            assert kernels.delta_unpack(anchor, width, len(keys), packed) == keys

    @given(keys=any_keys_st)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_any_order(self, keys):
        """Unsorted columns round-trip too — wrap-around deltas never corrupt."""
        with kernels.use_backend("python"):
            anchor, width, packed = kernels.delta_pack(keys)
            assert kernels.delta_unpack(anchor, width, len(keys), packed) == keys

    @requires_numpy
    @given(keys=any_keys_st)
    @settings(max_examples=80, deadline=None)
    def test_backends_bit_identical(self, keys):
        py, np_res = _both(kernels.delta_pack, keys)
        assert py == np_res
        anchor, width, packed = py
        py_dec, np_dec = _both(
            kernels.delta_unpack, anchor, width, len(keys), packed
        )
        assert py_dec == np_dec == keys

    @given(keys=sorted_keys_st)
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_encode_stable(self, keys):
        anchor, width, packed = kernels.delta_pack(keys)
        decoded = kernels.delta_unpack(anchor, width, len(keys), packed)
        assert kernels.delta_pack(decoded) == (anchor, width, packed)

    def test_width_zero_means_constant_column(self):
        anchor, width, packed = kernels.delta_pack([42, 42, 42])
        assert (width, packed) == (0, b"")
        assert kernels.delta_unpack(anchor, 0, 3, b"") == [42, 42, 42]

    def test_sentinel_column(self):
        keys = [kernels.GAP_SENTINEL] * 5
        anchor, width, packed = kernels.delta_pack(keys)
        assert kernels.delta_unpack(anchor, width, 5, packed) == keys

    def test_full_span_pair(self):
        for keys in ([INT64_MIN, INT64_MAX], [INT64_MAX, INT64_MIN]):
            anchor, width, packed = kernels.delta_pack(keys)
            assert kernels.delta_unpack(anchor, width, 2, packed) == keys


# ----------------------------------------------------------------------
# key blocks
# ----------------------------------------------------------------------
class TestKeyBlocks:
    @given(keys=sorted_keys_st)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_and_stats(self, keys):
        block = encode_key_block(keys)
        assert decode_key_block(block) == keys
        count, first, last, _width = key_block_stats(block)
        assert count == len(keys)
        if keys:
            assert (first, last) == (keys[0], keys[-1])

    def test_small_deltas_compress(self):
        keys = list(range(1_000_000, 1_000_000 + 512))
        block = encode_key_block(keys)
        assert len(block) < 8 * len(keys) / 4  # width 1: far below raw

    @requires_numpy
    @given(keys=sorted_keys_st)
    @settings(max_examples=40, deadline=None)
    def test_blocks_backend_identical(self, keys):
        py, np_res = _both(encode_key_block, keys)
        assert py == np_res


# ----------------------------------------------------------------------
# v2 page format
# ----------------------------------------------------------------------
class TestCompressedPages:
    @given(keys=st.lists(i64 | i64_edges, max_size=100, unique=True).map(sorted))
    @settings(max_examples=60, deadline=None)
    def test_leaf_roundtrip_both_formats(self, keys):
        values = [key * 2 + 1 for key in keys]
        v1 = encode_leaf(keys, values, compress=False)
        v2 = encode_leaf(keys, values, compress=True)
        assert decode_leaf(v1) == (keys, values)
        assert decode_leaf(v2) == (keys, values)

    def test_compression_only_when_smaller(self):
        # Dense near-sorted keys: the compressed block must win and the
        # flag must say so.
        keys = list(range(0, 256, 2))
        values = [0] * len(keys)
        v2 = encode_leaf(keys, values, compress=True)
        count, flags, key_column, _values = leaf_columns(v2)
        assert flags & FLAG_COMPRESSED_KEYS
        assert count == len(keys)
        assert decode_key_block(key_column) == keys
        assert len(key_column) < 8 * len(keys)
        # A 1-key page can never shrink: stays raw even with compress=True.
        v_small = encode_leaf([7], [0], compress=True)
        _count, flags_small, _kc, _v = leaf_columns(v_small)
        assert not flags_small & FLAG_COMPRESSED_KEYS

    def test_old_pages_decode_unchanged(self):
        """flags=0 pages (pre-v2 checkpoints) are byte-compatible."""
        keys = [1, 5, 9]
        values = ["a", "b", "c"]
        legacy = encode_leaf(keys, values)  # default: no compression
        assert decode_leaf(legacy) == (keys, values)
        _count, flags, _kc, _v = leaf_columns(legacy)
        assert flags == 0

    @given(
        entries=st.lists(
            st.tuples(i64, st.integers(min_value=0, max_value=2**31), st.booleans()),
            max_size=60,
            unique_by=lambda e: e[0],
        ).map(lambda es: sorted(es, key=lambda e: e[0]))
    )
    @settings(max_examples=40, deadline=None)
    def test_run_roundtrip(self, entries):
        full = [(k, seq, f"v{k}", tomb) for k, seq, tomb in entries]
        for compress in (False, True):
            data = encode_run(full, compress=compress)
            assert decode_run(data) == full

    @given(values=st.lists(i64 | i64_edges, min_size=2, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_int_value_column_roundtrip(self, values):
        """All-int64 value columns may delta-pack (any order); round-trip
        is exact either way."""
        keys = list(range(len(values)))
        page = encode_leaf(keys, values, compress=True)
        assert decode_leaf(page) == (keys, values)
        entries = [(k, k, v, False) for k, v in zip(keys, values)]
        assert decode_run(encode_run(entries, compress=True)) == entries

    def test_int_values_compress_when_smaller(self):
        keys = list(range(200))
        values = [k * 2 + 1 for k in keys]
        page = encode_leaf(keys, values, compress=True)
        _count, flags, _kc, vals = leaf_columns(page)
        assert flags & FLAG_COMPRESSED_VALUES
        assert vals == values
        raw = encode_leaf(keys, values, compress=False)
        assert len(page) < len(raw) / 4

    @pytest.mark.parametrize(
        "values",
        [
            [True, False] * 50,  # bool is not int: type must survive
            ["a"] * 100,
            [None] * 100,
            [0] * 99 + [2**63],  # one value out of int64 range
            [1.5] * 100,
        ],
    )
    def test_non_i64_values_stay_pickled(self, values):
        keys = list(range(len(values)))
        page = encode_leaf(keys, values, compress=True)
        _count, flags, _kc, vals = leaf_columns(page)
        assert not flags & FLAG_COMPRESSED_VALUES
        assert vals == values
        assert all(type(a) is type(b) for a, b in zip(vals, values))

    @requires_numpy
    def test_page_bytes_backend_identical(self):
        keys = list(range(10_000, 10_000 + 300, 3))
        values = [0] * len(keys)
        py, np_res = _both(lambda: encode_leaf(keys, values, compress=True))
        assert py == np_res


# ----------------------------------------------------------------------
# merge on encoded runs
# ----------------------------------------------------------------------
def _run_from(pairs, priority, page_items=16):
    return CompressedRun.from_items(
        ((k, v, t) for k, v, t in pairs), priority=priority, page_items=page_items
    )


class TestMerge:
    def test_priority_wins_on_duplicates(self):
        old = _run_from([(k, f"old{k}", False) for k in range(0, 100, 2)], 0)
        new = _run_from([(k, f"new{k}", False) for k in range(0, 100, 4)], 1)
        merged = dict(
            (k, v) for k, v, _t in merge_compressed_items([old, new])
        )
        for k in range(0, 100, 2):
            assert merged[k] == (f"new{k}" if k % 4 == 0 else f"old{k}")

    def test_tombstones_drop_or_carry(self):
        base = _run_from([(k, k, False) for k in range(10)], 0)
        deletes = _run_from([(3, None, True), (7, None, True)], 1)
        dropped = list(merge_compressed_items([base, deletes], drop_tombstones=True))
        assert [k for k, _v, _t in dropped] == [0, 1, 2, 4, 5, 6, 8, 9]
        carried = list(merge_compressed_items([base, deletes]))
        assert [(k, t) for k, _v, t in carried if t] == [(3, True), (7, True)]

    def test_disjoint_pages_pass_through_encoded(self):
        a = _run_from([(k, k, False) for k in range(0, 64)], 0, page_items=16)
        b = _run_from([(k, k, False) for k in range(64, 128)], 1, page_items=16)
        merged = merge_compressed_runs([a, b], page_items=16)
        merged.check_invariants()
        source_pages = a.pages + b.pages
        assert all(
            any(page is src for src in source_pages) for page in merged.pages
        )
        assert [k for k, _v, _t in merged.items()] == list(range(128))

    @given(
        columns=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=400),
                    st.booleans(),
                ),
                max_size=60,
                unique_by=lambda e: e[0],
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_matches_dict_semantics(self, columns):
        """N runs, newest-wins: the merge equals a last-writer dict overlay."""
        runs = []
        expected = {}
        for priority, column in enumerate(columns):
            column = sorted(column)
            runs.append(
                _run_from(
                    [(k, (priority, k), tomb) for k, tomb in column], priority
                )
            )
            for k, tomb in column:
                expected[k] = ((priority, k), tomb)
        live = {
            k: v for k, (v, tomb) in sorted(expected.items()) if not tomb
        }
        got = {
            k: v
            for k, v, _t in merge_compressed_items(runs, drop_tombstones=True)
        }
        assert got == live
        remerged = merge_compressed_runs(runs, page_items=8, drop_tombstones=True)
        remerged.check_invariants()
        assert {k: v for k, v, _t in remerged.items()} == live

    def test_run_page_lazy_decode(self):
        page = RunPage(encode_key_block([5, 6, 9]), ["a", "b", "c"])
        assert page._keys is None  # header reads do not decode
        assert (page.count, page.min_key, page.max_key) == (3, 5, 9)
        assert page._keys is None
        assert page.keys() == [5, 6, 9]
        assert page._keys is not None

    def test_header_size_matches_struct(self):
        block = encode_key_block([1])
        assert len(block) == KEY_BLOCK_HEADER.size
