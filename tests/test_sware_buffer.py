"""Unit tests for the SWARE-buffer internals."""

import pytest

from repro.core.buffer import HIT, MISS, TOMBSTONE, SWAREBuffer
from repro.core.config import SWAREConfig
from repro.errors import ConfigError


def make_buffer(capacity=64, page_size=8, **overrides) -> SWAREBuffer:
    return SWAREBuffer(
        SWAREConfig(buffer_capacity=capacity, page_size=page_size, **overrides)
    )


class TestConfig:
    def test_rejects_page_bigger_than_buffer(self):
        with pytest.raises(ConfigError):
            SWAREConfig(buffer_capacity=8, page_size=16)

    def test_rejects_bad_flush_fraction(self):
        with pytest.raises(ConfigError):
            SWAREConfig(flush_fraction=0.99)

    def test_with_override(self):
        config = SWAREConfig().with_(flush_fraction=0.25)
        assert config.flush_fraction == 0.25
        assert config.buffer_capacity == SWAREConfig().buffer_capacity


class TestInOrderGrowth:
    def test_sorted_appends_extend_main(self):
        buffer = make_buffer()
        for key in range(20):
            buffer.add(key, key)
        assert buffer.sorted_section_size == 20
        assert buffer.tail_size == 0
        buffer.check_invariants()

    def test_first_out_of_order_starts_tail(self):
        buffer = make_buffer()
        for key in (1, 2, 3, 0):
            buffer.add(key, key)
        assert buffer.sorted_section_size == 3
        assert buffer.tail_size == 1

    def test_later_in_order_keys_still_go_to_tail(self):
        buffer = make_buffer()
        for key in (1, 2, 3, 0, 10):
            buffer.add(key, key)
        assert buffer.sorted_section_size == 3
        assert buffer.tail_size == 2

    def test_duplicate_key_extends_main(self):
        buffer = make_buffer()
        buffer.add(5, "a")
        buffer.add(5, "b")  # equal keys are in order (non-decreasing)
        assert buffer.sorted_section_size == 2


class TestLastSortedZone:
    def test_fully_sorted_zone_is_page_aligned_whole(self):
        buffer = make_buffer(capacity=64, page_size=8)
        for key in range(24):
            buffer.add(key, key)
        assert buffer.last_sorted_zone == 24

    def test_overlapping_entry_moves_zone_left(self):
        buffer = make_buffer(capacity=64, page_size=8)
        for key in range(0, 32, 2):  # main: 0..30 even, 16 entries
            buffer.add(key, key)
        buffer.add(17, 17)  # overlaps the second main page (keys 16..30)
        # Flushable prefix: the 9 entries with keys <= 17, floor-aligned to
        # whole pages -> exactly the first page (8 entries).
        assert buffer.last_sorted_zone == 8
        buffer.add(3, 3)  # deep overlap: nothing is safely flushable now
        assert buffer.last_sorted_zone == 0

    def test_zone_zero_when_overlap_at_front(self):
        buffer = make_buffer(capacity=64, page_size=8)
        for key in range(10, 30):
            buffer.add(key, key)
        buffer.add(5, 5)  # smaller than everything in main
        assert buffer.last_sorted_zone == 0


class TestFlush:
    def test_fully_sorted_flush_without_sort(self):
        buffer = make_buffer(capacity=32, page_size=4, flush_fraction=0.5)
        for key in range(32):
            buffer.add(key, key)
        assert buffer.is_full
        batch = buffer.prepare_flush()
        assert batch.sorted_without_effort
        assert [entry[0] for entry in batch.entries] == list(range(16))
        assert buffer.sorted_section_size == 16
        assert len(buffer) == 16
        buffer.check_invariants()

    def test_flush_prefix_when_partial_overlap(self):
        buffer = make_buffer(capacity=32, page_size=4, flush_fraction=0.5)
        for key in range(24):
            buffer.add(key, key)
        buffer.add(10, -1)  # overlap: zone shrinks to keys <= 10 (page-aligned 8)
        for key in range(24, 31):
            buffer.add(key, key)
        assert buffer.is_full
        zone = buffer.last_sorted_zone
        assert zone == 8
        batch = buffer.prepare_flush()
        assert batch.sorted_without_effort
        assert len(batch.entries) == zone
        assert max(entry[0] for entry in batch.entries) <= 10
        buffer.check_invariants()
        # Retained entries are fully sorted again.
        assert buffer.tail_size == 0
        assert buffer.n_blocks == 0

    def test_flush_sorts_when_no_prefix(self):
        buffer = make_buffer(capacity=16, page_size=4, flush_fraction=0.5)
        for key in range(8, 24):
            buffer.add(key, key)
        # A full flush cycle first: buffer now holds sorted retained entries.
        buffer.prepare_flush()
        # Now force total overlap.
        while not buffer.is_full:
            buffer.add(0, 0)
        batch = buffer.prepare_flush()
        assert not batch.sorted_without_effort
        keys = [entry[0] for entry in batch.entries]
        assert keys == sorted(keys)
        buffer.check_invariants()

    def test_flush_preserves_recency_of_duplicates(self):
        buffer = make_buffer(capacity=16, page_size=4)
        buffer.add(5, "old")
        buffer.add(3, "x")  # start the tail
        buffer.add(5, "new")
        while not buffer.is_full:
            buffer.add(2, "fill")
        batch = buffer.drain()
        fives = [entry for entry in batch.entries if entry[0] == 5]
        assert [entry[2] for entry in fives] == ["old", "new"]

    def test_drain_empties_buffer(self):
        buffer = make_buffer()
        for key in (5, 1, 9, 1, 7):
            buffer.add(key, key)
        batch = buffer.drain()
        assert buffer.is_empty
        keys = [entry[0] for entry in batch.entries]
        assert keys == sorted(keys)
        assert len(batch.entries) == 5

    def test_flush_resets_filters_and_zonemaps(self):
        buffer = make_buffer(capacity=16, page_size=4)
        for key in (4, 1, 3, 2, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 10, 11):
            buffer.add(key, key)
        buffer.prepare_flush()
        assert buffer.page_zonemaps.n_pages == 0
        if buffer.global_bf is not None:
            assert buffer.global_bf.n_added == 0


class TestLookup:
    def test_miss_on_empty(self):
        buffer = make_buffer()
        assert buffer.lookup(1) == (MISS, None)

    def test_hit_in_main(self):
        buffer = make_buffer()
        for key in range(10):
            buffer.add(key, key * 2)
        assert buffer.lookup(4) == (HIT, 8)

    def test_hit_in_tail(self):
        buffer = make_buffer()
        for key in (5, 6, 2):
            buffer.add(key, key)
        assert buffer.lookup(2) == (HIT, 2)

    def test_newest_version_wins_across_sections(self):
        buffer = make_buffer()
        buffer.add(5, "main")
        buffer.add(1, "tail-starter")
        buffer.add(5, "tail")
        assert buffer.lookup(5) == (HIT, "tail")

    def test_newest_version_within_tail(self):
        buffer = make_buffer()
        buffer.add(9, "x")
        buffer.add(5, "a")
        buffer.add(5, "b")
        assert buffer.lookup(5) == (HIT, "b")

    def test_tombstone_reported(self):
        buffer = make_buffer()
        buffer.add(5, "v")
        buffer.add(5, None, tombstone=True)
        state, _ = buffer.lookup(5)
        assert state == TOMBSTONE

    def test_out_of_range_key_misses_fast(self):
        buffer = make_buffer()
        buffer.add(10, 1)
        buffer.add(20, 2)
        assert buffer.lookup(5) == (MISS, None)
        assert buffer.stats.buffer_skips_by_zonemap == 1


class TestQueryDrivenSorting:
    def test_threshold_trigger(self):
        buffer = make_buffer(capacity=64, page_size=8, query_sorting_threshold=0.10)
        for key in range(10):
            buffer.add(key, key)
        buffer.add(0, 0)  # start tail
        assert not buffer.should_query_sort()  # tail=1 < 6
        for key in range(6):
            buffer.add(0, key)
        assert buffer.should_query_sort()

    def test_query_sort_freezes_tail_into_block(self):
        buffer = make_buffer(capacity=64, page_size=8)
        for key in range(10):
            buffer.add(key, key)
        for key in (3, 9, 1):
            buffer.add(key, -key)
        buffer.query_sort()
        assert buffer.tail_size == 0
        assert buffer.n_blocks == 1
        buffer.check_invariants()
        # Lookups still find the newest versions.
        assert buffer.lookup(3) == (HIT, -3)

    def test_disabled_at_threshold_one(self):
        buffer = make_buffer(capacity=16, page_size=4, query_sorting_threshold=1.0)
        for key in (5, 1, 2, 3, 4, 0):
            buffer.add(key, key)
        assert not buffer.should_query_sort()

    def test_blocks_searched_newest_first(self):
        buffer = make_buffer(capacity=128, page_size=8)
        buffer.add(50, "main")
        buffer.add(10, "b1")
        buffer.query_sort()
        buffer.add(10, "b2")
        buffer.query_sort()
        assert buffer.n_blocks == 2
        assert buffer.lookup(10) == (HIT, "b2")


class TestRangeEntries:
    def test_collects_across_components(self):
        buffer = make_buffer(capacity=128, page_size=8)
        for key in range(0, 20, 2):
            buffer.add(key, "main")
        buffer.add(5, "block")
        buffer.query_sort()
        buffer.add(7, "tail")
        entries = buffer.range_entries(4, 8)
        found = {(entry[0], entry[2]) for entry in entries}
        assert found == {(4, "main"), (6, "main"), (8, "main"), (5, "block"), (7, "tail")}

    def test_sorted_by_key_and_recency(self):
        buffer = make_buffer()
        buffer.add(5, "v1")
        buffer.add(1, "x")
        buffer.add(5, "v2")
        entries = buffer.range_entries(0, 10)
        fives = [entry[2] for entry in entries if entry[0] == 5]
        assert fives == ["v1", "v2"]

    def test_no_overlap_returns_empty(self):
        buffer = make_buffer()
        buffer.add(10, 1)
        assert buffer.range_entries(20, 30) == []

    def test_tail_sort_cached_until_new_insert(self):
        buffer = make_buffer()
        buffer.add(5, 5)
        buffer.add(1, 1)
        buffer.range_entries(0, 10)
        sorts_before = buffer.stats.sorted_entries
        buffer.range_entries(0, 10)  # cached — no re-sort
        assert buffer.stats.sorted_entries == sorts_before
        buffer.add(0, 0)  # invalidates the cache
        buffer.range_entries(0, 10)
        assert buffer.stats.sorted_entries > sorts_before


class TestSortAlgorithmChoice:
    def test_near_sorted_tail_uses_kl_sort(self):
        from repro.sortedness.generator import generate_kl_keys

        buffer = make_buffer(capacity=512, page_size=32)
        buffer.add(0, 0)
        buffer.add(-1, -1)  # open the tail immediately
        for key in generate_kl_keys(400, 0.05, 0.02, seed=1):
            buffer.add(key + 1, key)
        buffer.drain()
        assert buffer.stats.kl_sorts >= 1

    def test_scrambled_tail_uses_stable_sort(self):
        from repro.sortedness.generator import scrambled_keys

        buffer = make_buffer(capacity=512, page_size=32)
        for key in scrambled_keys(400, seed=2):
            buffer.add(key, key)
        buffer.drain()
        assert buffer.stats.stable_sorts >= 1
