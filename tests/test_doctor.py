"""Tests for ``repro doctor`` scenarios/reports and the ``repro top`` view."""

import json
import threading

import pytest

from repro.bench.telemetry import (
    build_bench_artifact,
    save_bench_artifact,
    validate_bench_artifact,
)
from repro.obs import Observability
from repro.obs.doctor import (
    SCENARIOS,
    evaluate_artifact,
    evaluate_obs,
    format_report,
    report_document,
    run_scenario,
    split_findings,
)
from repro.obs.top import format_dashboard, live_loop, spark


@pytest.fixture(scope="module")
def healthy_obs():
    return run_scenario("healthy", n=4000, trace=True)


@pytest.fixture(scope="module")
def drift_obs():
    return run_scenario("drift", n=6000, trace=True)


class TestScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_scenario("nope", n=100)

    def test_healthy_scenario_evaluates_clean(self, healthy_obs):
        actionable, _notes = split_findings(evaluate_obs(healthy_obs))
        assert actionable == []

    def test_drift_scenario_reports_collapse_and_undersizing(self, drift_obs):
        actionable, _notes = split_findings(evaluate_obs(drift_obs))
        codes = [f.code for f in actionable]
        assert "sortedness_collapse" in codes
        assert "buffer_undersized" in codes
        # Most severe first: the collapse (critical) leads the report.
        assert actionable[0].code == "sortedness_collapse"

    def test_scenario_runs_populate_monitors_and_trace(self, drift_obs):
        snap = drift_obs.monitors.snapshot()
        assert len(snap["sortedness"]["windows"]) >= 4
        assert snap["saturation"]["flushes"] > 0
        assert snap["bloom"]["expected_fpr_samples"]
        assert drift_obs.tracer.recorded > 0

    def test_external_obs_is_used(self):
        obs = Observability(monitors=True)
        returned = run_scenario("healthy", n=1000, obs=obs)
        assert returned is obs
        assert obs.monitors.sortedness.keys_observed == 1000

    def test_scenario_names_exported(self):
        assert SCENARIOS == ("healthy", "drift")


class TestArtifactParity:
    def test_live_and_artifact_paths_agree(self, drift_obs, tmp_path):
        live = evaluate_obs(drift_obs, poll=False)
        doc = build_bench_artifact("doctor_drift", drift_obs, poll=False)
        assert validate_bench_artifact(doc) == []
        path = save_bench_artifact(doc, tmp_path / "BENCH_doctor_drift.json")
        loaded = json.loads(path.read_text())
        from_artifact = evaluate_artifact(loaded)
        assert [f.to_dict() for f in from_artifact] == [f.to_dict() for f in live]

    def test_artifact_without_obs_sections_evaluates_empty(self):
        assert evaluate_artifact({}) == []


class TestReports:
    def test_format_report_clean(self, healthy_obs):
        text = format_report(evaluate_obs(healthy_obs, poll=False), source="unit")
        assert "repro doctor — unit" in text
        assert "health: OK — no findings" in text

    def test_format_report_findings(self, drift_obs):
        text = format_report(evaluate_obs(drift_obs, poll=False), source="unit")
        assert "health: CRITICAL" in text
        assert "sortedness_collapse" in text
        assert "fix:" in text  # remediation hints are rendered

    def test_report_document_shape(self, drift_obs):
        findings = evaluate_obs(drift_obs, poll=False)
        doc = report_document(findings, source="unit")
        assert doc["schema"] == "repro-doctor/v1"
        assert doc["healthy"] is False
        assert doc["findings"][0]["code"] == "sortedness_collapse"
        assert json.loads(json.dumps(doc)) == doc

    def test_report_document_healthy(self, healthy_obs):
        doc = report_document(evaluate_obs(healthy_obs, poll=False))
        assert doc["healthy"] is True
        assert doc["findings"] == []


class TestSpark:
    def test_levels_and_clipping(self):
        assert spark([]) == "(no samples)"
        strip = spark([0.0, 0.5, 1.0, 2.0])
        assert len(strip) == 4
        assert strip[0] == " " and strip[2] == "█" == strip[3]

    def test_width_keeps_tail(self):
        assert len(spark([0.5] * 100, width=10)) == 10


class TestDashboard:
    def test_dashboard_renders_all_sections(self, drift_obs):
        text = format_dashboard(drift_obs, title="unit top")
        assert text.startswith("unit top\n========")
        for label in ("sortedness", "buffer", "flushes", "bloom",
                      "wal fsync", "locks", "trace", "health"):
            assert label in text
        assert "CRITICAL" in text and "sortedness_collapse" in text

    def test_dashboard_on_empty_obs(self):
        text = format_dashboard(Observability(trace=True, monitors=True))
        assert "(warming up)" in text
        assert "health       OK" in text

    def test_dropped_events_surface(self, drift_obs):
        assert drift_obs.tracer.dropped > 0
        assert "dropped (ring truncated)" in format_dashboard(drift_obs)


class TestLiveLoop:
    def test_renders_final_frame_after_done(self):
        import io

        obs = Observability(trace=True, monitors=True)
        done = threading.Event()
        done.set()
        out = io.StringIO()
        rendered = live_loop(obs, done, interval=0.01, clear=False, out=out)
        assert rendered == 1
        assert "health" in out.getvalue()

    def test_frames_limit(self):
        import io

        obs = Observability(monitors=True)
        done = threading.Event()  # never set: the frame cap must stop us
        out = io.StringIO()
        rendered = live_loop(obs, done, interval=0.01, frames=3,
                             clear=False, out=out)
        assert rendered == 3
        assert out.getvalue().count("health") == 3

    def test_clear_emits_ansi(self):
        import io

        done = threading.Event()
        done.set()
        out = io.StringIO()
        live_loop(Observability(monitors=True), done, clear=True, out=out)
        assert out.getvalue().startswith("\x1b[2J\x1b[H")
