"""Tests for causal trace identity and the Perfetto/Chrome trace export."""

import json
import threading

from repro.obs import Observability, observe
from repro.obs.export import to_perfetto, validate_perfetto
from repro.obs.tracer import Tracer


class TestCausalIdentity:
    def test_root_span_starts_a_fresh_trace(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            pass
        (event,) = tracer.events()
        assert event.trace_id is not None
        assert event.span_id is not None
        assert event.parent_id is None

    def test_nested_span_inherits_trace_and_parents(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.events()
        assert a.trace_id != b.trace_id

    def test_point_event_chains_to_enclosing_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("op"):
            tracer.event("mark")
        mark, op = tracer.events()
        assert mark.span_id is None  # point events carry no span identity
        assert mark.parent_id == op.span_id
        assert mark.trace_id == op.trace_id

    def test_point_event_outside_any_span_has_no_parent(self):
        tracer = Tracer(enabled=True)
        tracer.event("orphan")
        (event,) = tracer.events()
        assert event.parent_id is None and event.trace_id is None

    def test_threads_build_independent_trees_with_dense_tids(self):
        tracer = Tracer(enabled=True)
        barrier = threading.Barrier(2)  # overlap workers: idents are reused

        def work():
            barrier.wait(timeout=10)
            with tracer.span("thread-op"):
                with tracer.span("thread-inner"):
                    pass
            barrier.wait(timeout=10)

        with tracer.span("main-op"):
            pass
        workers = [threading.Thread(target=work) for _ in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        events = tracer.events()
        tids = {event.tid for event in events}
        assert len(tids) == 3  # main + two workers
        assert tids <= {1, 2, 3}  # dense numbering, not raw idents
        # Each thread's inner span parents to that thread's own root.
        for tid in tids:
            mine = [e for e in events if e.tid == tid]
            roots = [e for e in mine if e.parent_id is None]
            children = [e for e in mine if e.parent_id is not None]
            assert len(roots) == 1
            for child in children:
                assert child.parent_id == roots[0].span_id
                assert child.trace_id == roots[0].trace_id

    def test_to_dict_includes_causal_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("op"):
            pass
        doc = tracer.events()[0].to_dict()
        assert {"trace_id", "span_id", "tid"} <= set(doc)
        assert "parent_id" not in doc  # None fields stay out of the JSON

    def test_snapshot_reports_truncation(self):
        tracer = Tracer(capacity=2, enabled=True)
        for i in range(5):
            tracer.event(f"e{i}")
        snap = tracer.snapshot()
        assert snap == {"recorded": 5, "dropped": 3, "capacity": 2,
                        "truncated": True}


class TestComponentCausality:
    def test_sware_operations_root_causal_trees(self):
        from repro.btree.btree import BPlusTree
        from repro.core.config import SWAREConfig
        from repro.core.sware import SortednessAwareIndex
        from repro.storage.costmodel import Meter

        obs = Observability(trace=True)
        with observe(obs):
            index = SortednessAwareIndex(
                BPlusTree(), config=SWAREConfig(buffer_capacity=64), meter=Meter()
            )
        for key in range(300):
            index.insert(key, key)
        index.get(5)

        events = obs.tracer.events()
        by_name = {}
        for event in events:
            by_name.setdefault(event.name, []).append(event)
        assert "sware.put" in by_name
        assert "sware.get" in by_name
        # Flush cycles are caused by a put: they parent inside its span.
        flushes = by_name.get("sware.flush_cycle", [])
        assert flushes
        put_span_ids = {e.span_id for e in by_name["sware.put"]}
        for flush in flushes:
            assert flush.parent_id in put_span_ids
            assert flush.trace_id is not None

    def test_wal_appends_chain_into_the_writing_operation(self, tmp_path):
        from repro.btree.btree import BPlusTree
        from repro.core.sware import SortednessAwareIndex
        from repro.storage.costmodel import Meter
        from repro.storage.wal import WriteAheadLog

        obs = Observability(trace=True)
        with observe(obs):
            index = SortednessAwareIndex(BPlusTree(), meter=Meter())
            index.wal = WriteAheadLog(str(tmp_path / "t.wal"))
        index.insert(1, "a")
        index.wal.close()
        appends = [e for e in obs.tracer.events() if e.name == "wal.append"]
        assert appends
        assert all(e.parent_id is not None for e in appends)

    def test_concurrent_writes_carry_thread_ids(self):
        from repro.btree.btree import BPlusTree
        from repro.core.concurrent import ConcurrentSortednessAwareIndex

        obs = Observability(trace=True)
        with observe(obs):
            index = ConcurrentSortednessAwareIndex(BPlusTree())

        # Both threads must be alive at once: Python reuses thread idents,
        # so sequential threads could legitimately share a dense tid.
        barrier = threading.Barrier(2)

        def writer(base):
            barrier.wait(timeout=10)
            for key in range(base, base + 50):
                index.insert(key, key)
            barrier.wait(timeout=10)

        threads = [threading.Thread(target=writer, args=(i * 1000,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        writes = [e for e in obs.tracer.events() if e.name == "concurrent.write"]
        assert len(writes) == 100
        assert len({e.tid for e in writes}) == 2


class TestPerfettoExport:
    def _traced(self):
        tracer = Tracer(enabled=True)
        with tracer.span("sware.put", key=1):
            tracer.event("bloom.skip", page=3)
            with tracer.span("sware.flush_cycle", entries=8):
                pass
        return tracer

    def test_document_is_schema_valid(self):
        tracer = self._traced()
        doc = to_perfetto(tracer.events(), tracer=tracer)
        assert validate_perfetto(doc) == []
        assert json.loads(json.dumps(doc)) == doc

    def test_spans_become_complete_events(self):
        tracer = self._traced()
        doc = to_perfetto(tracer.events())
        complete = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert {r["name"] for r in complete} == {"sware.put", "sware.flush_cycle"}
        for row in complete:
            assert row["dur"] >= 0
            assert row["cat"] == "sware"
            assert "trace_id" in row["args"] and "span_id" in row["args"]

    def test_point_events_become_instants(self):
        doc = to_perfetto(self._traced().events())
        (instant,) = [r for r in doc["traceEvents"] if r["ph"] == "i"]
        assert instant["name"] == "bloom.skip"
        assert instant["s"] == "t"
        assert instant["args"]["page"] == 3

    def test_metadata_names_process_and_threads(self):
        doc = to_perfetto(self._traced().events(), process_name="unit")
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        assert meta[0]["args"]["name"] == "unit"
        assert any(r["name"] == "thread_name" for r in meta)

    def test_tracer_accounting_rides_in_other_data(self):
        tracer = self._traced()
        doc = to_perfetto(tracer.events(), tracer=tracer)
        assert doc["otherData"]["trace"]["recorded"] == tracer.recorded
        assert doc["otherData"]["trace"]["truncated"] is False

    def test_non_json_attrs_are_stringified(self):
        tracer = Tracer(enabled=True)
        with tracer.span("op", where=object()):
            pass
        doc = to_perfetto(tracer.events())
        (row,) = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert isinstance(row["args"]["where"], str)
        assert validate_perfetto(doc) == []

    def test_empty_trace_still_valid(self):
        doc = to_perfetto([])
        assert validate_perfetto(doc) == []
        assert len(doc["traceEvents"]) == 1  # just the process metadata


class TestPerfettoValidator:
    def test_rejects_non_object(self):
        assert validate_perfetto([]) == ["trace document is not a JSON object"]
        assert validate_perfetto({"x": 1}) == ["traceEvents must be a list"]

    def test_flags_malformed_rows(self):
        doc = {
            "traceEvents": [
                "not-a-row",
                {"name": "", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0},
                {"name": "a", "ph": "Z", "pid": 1, "tid": 1, "ts": 0.0},
                {"name": "b", "ph": "X", "pid": 1, "tid": "t", "ts": 0.0},
                {"name": "c", "ph": "X", "pid": 1, "tid": 1},
                {"name": "d", "ph": "i", "pid": 1, "tid": 1, "ts": 0.0,
                 "s": "x"},
                {"name": "e", "ph": "i", "pid": 1, "tid": 1, "ts": 0.0,
                 "s": "t", "args": []},
            ]
        }
        errors = validate_perfetto(doc)
        assert any("not an object" in e for e in errors)
        assert any("name" in e for e in errors)
        assert any("'Z'" in e for e in errors)
        assert any("tid" in e for e in errors)
        assert any(".ts" in e for e in errors)
        assert any(".dur" in e for e in errors)
        assert any(".s must" in e for e in errors)
        assert any("args" in e for e in errors)

    def test_metadata_rows_need_no_timestamp(self):
        doc = {"traceEvents": [{"name": "process_name", "ph": "M",
                                "pid": 1, "tid": 0, "args": {"name": "x"}}]}
        assert validate_perfetto(doc) == []
