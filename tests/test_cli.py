"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestGenerate:
    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--n", "50", "--k", "0.1", "--l", "0.1"]) == 0
        lines = capsys.readouterr().out.split()
        assert len(lines) == 50
        assert sorted(int(x) for x in lines) == list(range(50))

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "keys.txt"
        assert main(["generate", "--n", "20", "--out", str(out)]) == 0
        assert len(out.read_text().split()) == 20

    def test_generate_scrambled(self, capsys):
        assert main(["generate", "--n", "100", "--scrambled", "--seed", "3"]) == 0
        keys = [int(x) for x in capsys.readouterr().out.split()]
        assert keys != sorted(keys)

    def test_generate_deterministic(self, capsys):
        main(["generate", "--n", "30", "--seed", "5"])
        first = capsys.readouterr().out
        main(["generate", "--n", "30", "--seed", "5"])
        assert capsys.readouterr().out == first


class TestMeasure:
    def test_measure_file(self, tmp_path, capsys):
        path = tmp_path / "keys.txt"
        path.write_text("1\n3\n2\n4\n")
        assert main(["measure", str(path)]) == 0
        out = capsys.readouterr().out
        assert "K " in out or "K" in out
        assert "degree" in out

    def test_measure_sorted(self, tmp_path, capsys):
        path = tmp_path / "keys.txt"
        path.write_text("\n".join(str(i) for i in range(100)))
        main(["measure", str(path)])
        assert "sorted" in capsys.readouterr().out

    def test_measure_stdin(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("5 1 4 2 3"))
        assert main(["measure"]) == 0
        assert "degree" in capsys.readouterr().out

    def test_measure_empty_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert main(["measure", str(path)]) == 1


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "bulk-loaded" in out

    def test_demo_sorted_wins(self, capsys):
        main(["demo", "--n", "3000", "--k", "0.0", "--l", "0.0", "--read-fraction", "0.1"])
        out = capsys.readouterr().out
        speedup_line = next(line for line in out.splitlines() if "speedup" in line)
        value = float(speedup_line.split(":")[1].strip().rstrip("x"))
        assert value > 1.5


class TestExperiment:
    def test_experiment_fig09(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        assert main(["experiment", "fig09", "--n", "300"]) == 0
        assert "Fig. 9" in capsys.readouterr().out

    def test_experiment_space(self, capsys):
        assert main(["experiment", "space", "--n", "2000"]) == 0
        assert "Space" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_all_experiment_names_importable(self):
        import importlib

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.bench.experiments.{name}")
            assert hasattr(module, "run")


class TestBenchBatch:
    def test_bench_batch_writes_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        out = tmp_path / "bench_batch.json"
        args = ["bench-batch", "--n", "1000", "--batch", "64", "--repeats", "1"]
        assert main(args + ["--json", str(out)]) == 0
        assert "Batch-operation throughput" in capsys.readouterr().out

        import json

        doc = json.loads(out.read_text())
        gauges = doc["metrics"]["gauges"]
        assert any(name.endswith("_ops_per_s") for name in gauges)
        assert (tmp_path / "BENCH_batch_ops.json").exists()

    def test_perf_gate_pass_and_fail(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        out = tmp_path / "bench_batch.json"
        args = ["bench-batch", "--n", "1000", "--batch", "64", "--repeats", "1"]
        assert main(args + ["--json", str(out)]) == 0
        capsys.readouterr()

        assert main(["perf-gate", str(out), str(out)]) == 0
        assert "PASS" in capsys.readouterr().out

        import json

        doc = json.loads(out.read_text())
        for name in doc["metrics"]["gauges"]:
            if name.endswith("_ops_per_s"):
                doc["metrics"]["gauges"][name] /= 10.0
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(doc))
        assert main(["perf-gate", str(out), str(slow)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_concurrent_writes_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        out = tmp_path / "bench_concurrent.json"
        args = [
            "bench-concurrent",
            "--n", "1000",
            "--threads", "1,2",
            "--repeats", "1",
            "--json", str(out),
        ]
        assert main(args) == 0
        assert "Concurrent front-end throughput" in capsys.readouterr().out

        import json

        doc = json.loads(out.read_text())
        gauges = doc["metrics"]["gauges"]
        assert "concurrent_ops_serial_mixed_ops_per_s" in gauges
        assert "concurrent_ops_t2_mixed_ops_per_s" in gauges
        assert "concurrent_ops_t2_lock_acquires" in gauges
        assert (tmp_path / "BENCH_concurrent.json").exists()

    def test_perf_gate_unreadable_input(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        valid = tmp_path / "valid.json"
        valid.write_text("{}")
        assert main(["perf-gate", str(missing), str(valid)]) == 2


class TestRecover:
    def _populate(self, tmp_path, n=60):
        from repro.core.config import SWAREConfig
        from repro.core.factory import make_sa_btree
        from repro.storage.pagefile import CheckpointStore
        from repro.storage.wal import WriteAheadLog

        ckpt = str(tmp_path / "index.db")
        wal_path = str(tmp_path / "index.wal")
        config = SWAREConfig(buffer_capacity=16, page_size=4)
        index = make_sa_btree(config)
        index.wal = WriteAheadLog(wal_path)
        for key in range(n):
            index.insert(key, key * 2)
        CheckpointStore(ckpt, slot_size=256).save_index(index)
        # Post-checkpoint tail that recovery must replay.
        index.insert(10_000, "tail")
        index.wal.close()
        return ckpt, wal_path

    def test_recover_reports_checkpoint_and_wal(self, tmp_path, capsys):
        ckpt, wal_path = self._populate(tmp_path)
        assert main(["recover", ckpt, "--wal", wal_path, "--slot-size", "256"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint : epoch 1" in out
        assert "wal replay" in out
        assert "entries" in out

    def test_recover_without_wal(self, tmp_path, capsys):
        ckpt, _ = self._populate(tmp_path)
        assert main(["recover", ckpt, "--slot-size", "256"]) == 0
        assert "wal replay : 0 records" in capsys.readouterr().out

    def test_recover_corrupt_checkpoint_fails(self, tmp_path, capsys):
        ckpt = tmp_path / "bad.db"
        ckpt.write_bytes(b"\xff" * 4096)
        assert main(["recover", str(ckpt)]) == 1
        assert "recovery failed" in capsys.readouterr().err


class TestTracePerfetto:
    def test_writes_schema_valid_trace_event_json(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_perfetto

        out = tmp_path / "trace.json"
        assert main(["trace", "--n", "1500", "--perfetto", str(out)]) == 0
        captured = capsys.readouterr()
        assert "Chrome trace-event JSON" in captured.err
        doc = json.loads(out.read_text())
        assert validate_perfetto(doc) == []
        names = {row["name"] for row in doc["traceEvents"]}
        assert "sware.flush_cycle" in names
        assert "process_name" in names


class TestExperimentProfile:
    def test_profile_prints_layer_table(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        assert main(["experiment", "fig09", "--n", "400", "--profile"]) == 0
        assert "profile (sampled at" in capsys.readouterr().out

    def test_profile_section_lands_in_artifact(self, tmp_path, monkeypatch, capsys):
        import json

        from repro.bench.telemetry import validate_bench_artifact

        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        out = tmp_path / "out.json"
        args = ["experiment", "fig13", "--n", "800", "--profile",
                "--json", str(out)]
        assert main(args) == 0
        doc = json.loads(out.read_text())
        assert validate_bench_artifact(doc) == []
        assert doc["profile"]["hz"] > 0


class TestDoctor:
    def test_healthy_scenario_is_clean(self, capsys):
        args = ["doctor", "--scenario", "healthy", "--n", "3000", "--check"]
        assert main(args) == 0
        assert "health: OK — no findings" in capsys.readouterr().out

    def test_drift_scenario_fails_check(self, capsys):
        args = ["doctor", "--scenario", "drift", "--n", "6000", "--check"]
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "health: CRITICAL" in out
        assert "sortedness_collapse" in out
        assert "buffer_undersized" in out
        assert "fix:" in out

    def test_drift_without_check_still_exits_zero(self, capsys):
        assert main(["doctor", "--scenario", "drift", "--n", "6000"]) == 0
        assert "sortedness_collapse" in capsys.readouterr().out

    def test_json_report_and_bench_artifact(self, tmp_path, capsys):
        import json

        from repro.bench.telemetry import validate_bench_artifact

        report = tmp_path / "report.json"
        bench = tmp_path / "bench.json"
        args = ["doctor", "--scenario", "drift", "--n", "6000",
                "--json", str(report), "--bench", str(bench)]
        assert main(args) == 0
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro-doctor/v1"
        assert doc["healthy"] is False
        assert {f["code"] for f in doc["findings"]} >= {
            "sortedness_collapse", "buffer_undersized"
        }
        artifact = json.loads(bench.read_text())
        assert validate_bench_artifact(artifact) == []
        assert artifact["experiment"] == "doctor_drift"
        capsys.readouterr()

        # The artifact path reproduces the live diagnosis.
        assert main(["doctor", "--from", str(bench), "--check"]) == 1
        assert "sortedness_collapse" in capsys.readouterr().out

    def test_from_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["doctor", "--from", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_from_invalid_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["doctor", "--from", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["doctor", "--scenario", "chaos"])


class TestTop:
    def test_renders_frames_without_clearing(self, capsys):
        args = ["top", "--scenario", "healthy", "--n", "2000",
                "--interval", "0.05", "--no-clear"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "repro top — scenario:healthy (n=2000)" in out
        for label in ("sortedness", "buffer", "bloom", "health"):
            assert label in out
        assert "\x1b[2J" not in out

    def test_frame_cap_and_clear(self, capsys):
        args = ["top", "--scenario", "healthy", "--n", "2000",
                "--interval", "0.05", "--frames", "2"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("health") >= 1
        assert "\x1b[2J" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
