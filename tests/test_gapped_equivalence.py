"""Observational equivalence of the classic and gapped B+-tree layouts.

The gapped node layout (``node_layout="gapped"``, the BS-tree direction) is
a pure representation change: for any program of inserts, batch inserts,
deletes and reads, a gapped tree must answer exactly like a classic tree —
same items, same created counts, same lookup and range results — under
*both* kernel backends, and the two backends must agree with each other.
These properties pin that contract, mirroring what
``tests/test_kernels_equivalence.py`` does for the kernel layer.

Alongside the hypothesis programs: unit coverage for the gapped-specific
machinery — sentinel-key demotion to list stores, config validation,
fission accounting, the explicit physical-occupancy fields of
``space_stats()``, checkpoint round-trips, coalesced-probe cache
invalidation, and profiler layer attribution for the new modules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.btree.node import GappedInternal, GappedLeaf
from repro.errors import ConfigError
from repro.obs.profiler import layer_for_module
from repro.storage.costmodel import Meter
from repro.storage.pages import deserialize_btree, serialize_btree

HAS_NUMPY = kernels.numpy_available()
requires_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not importable")

BOTH_BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])

SENTINEL = kernels.GAP_SENTINEL

# Small keys drive dense trees with lots of structural churn; the edge keys
# exercise demotion (sentinel, beyond-int64) and int64 boundaries.
edge_keys = st.sampled_from([SENTINEL, 2**70, -(2**70), 2**63 - 2, -(2**63), 0])
key_st = st.integers(min_value=0, max_value=200) | edge_keys

ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), key_st),
        st.tuples(st.just("insert_many"), st.lists(key_st, max_size=24)),
        st.tuples(st.just("delete"), key_st),
    ),
    max_size=30,
)


def _tree(layout: str, **overrides) -> BPlusTree:
    config = BPlusTreeConfig(
        leaf_capacity=overrides.pop("leaf_capacity", 4),
        internal_capacity=overrides.pop("internal_capacity", 4),
        node_layout=layout,
        **overrides,
    )
    return BPlusTree(config, meter=Meter())


def _apply(tree: BPlusTree, ops) -> list:
    """Replay an op program; returns the per-op observable results."""
    results = []
    for t, (op, arg) in enumerate(ops):
        if op == "insert":
            results.append(tree.insert(arg, f"v{arg}@{t}"))
        elif op == "insert_many":
            results.append(tree.insert_many([(k, f"v{k}@{t}") for k in arg]))
        else:
            results.append(tree.delete(arg))
    return results


def _observe(tree: BPlusTree, probe_keys) -> dict:
    return {
        "items": list(tree.iter_items()),
        "len": len(tree),
        "min": tree.min_key,
        "max": tree.max_key,
        "gets": [tree.get(k) for k in probe_keys],
        "get_many": tree.get_many(probe_keys),
        "range_all": tree.range_query(-(2**70) - 1, 2**70 + 1),
        "range_mid": tree.range_query(40, 160),
    }


# ----------------------------------------------------------------------
# layout equivalence programs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BOTH_BACKENDS)
@given(ops=ops_st)
@settings(max_examples=50, deadline=None)
def test_gapped_matches_classic(backend, ops):
    """Any op program observes identical behavior under both layouts."""
    with kernels.use_backend(backend):
        classic = _tree("classic")
        gapped = _tree("gapped")
        assert _apply(classic, ops) == _apply(gapped, ops)
        probes = sorted({k for _op, arg in ops for k in
                         (arg if isinstance(arg, list) else [arg])} | {17, -1})
        assert _observe(classic, probes) == _observe(gapped, probes)
        classic.check_invariants()
        gapped.check_invariants()


@requires_numpy
@given(ops=ops_st)
@settings(max_examples=50, deadline=None)
def test_gapped_backends_agree(ops):
    """The same gapped program is backend-invariant (python vs numpy)."""
    observed = {}
    for backend in ("python", "numpy"):
        with kernels.use_backend(backend):
            tree = _tree("gapped")
            replay = _apply(tree, ops)
            probes = sorted({k for _op, arg in ops for k in
                             (arg if isinstance(arg, list) else [arg])})
            observed[backend] = (replay, _observe(tree, probes))
            tree.check_invariants()
    assert observed["python"] == observed["numpy"]


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
@given(keys=st.lists(key_st, min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_insert_many_matches_sequential_loop(backend, keys):
    """Batch descent is an amortization, not a semantic change."""
    items = [(k, f"v{k}@{t}") for t, k in enumerate(keys)]
    with kernels.use_backend(backend):
        batched = _tree("gapped")
        sequential = _tree("gapped")
        created_batch = batched.insert_many(items)
        created_seq = sum(sequential.insert(k, v) for k, v in items)
        assert created_batch == created_seq
        assert list(batched.iter_items()) == list(sequential.iter_items())
        batched.check_invariants()


# ----------------------------------------------------------------------
# gapped merge kernels agree across backends
# ----------------------------------------------------------------------
sorted_unique = st.lists(
    st.integers(min_value=0, max_value=500), max_size=40, unique=True
).map(sorted)


@requires_numpy
@given(live=sorted_unique, run=st.lists(
    st.integers(min_value=0, max_value=500), min_size=1, max_size=20, unique=True
).map(sorted))
@settings(max_examples=60, deadline=None)
def test_merge_kernels_match(live, run):
    results = {}
    for backend in ("python", "numpy"):
        with kernels.use_backend(backend):
            store = kernels.gapped_key_store(live, len(live) + len(run))
            col = kernels.key_array(run)
            positions, is_new, n_created = kernels.merge_positions(
                store, len(live), col
            )
            out = {
                "positions": [int(p) for p in positions],
                "is_new": [bool(b) for b in is_new],
                "n_created": n_created,
            }
            if n_created == len(run):
                merged = kernels.merge_insert_keys(
                    store, len(live), col, 0, len(run), positions,
                    len(live) + len(run),
                )
                out["merged"] = kernels.store_keys(merged, len(live) + len(run))
            results[backend] = out
    assert results["python"] == results["numpy"]


@requires_numpy
@given(chunks=st.lists(sorted_unique, min_size=1, max_size=5),
       probes=st.lists(st.integers(min_value=0, max_value=500), max_size=30))
@settings(max_examples=60, deadline=None)
def test_concat_probe_kernels_match(chunks, probes):
    """The coalesced-probe pair agrees across backends when the combined
    column is globally sorted (disjoint ascending chunks, as in the leaf
    chain)."""
    flat = sorted({k for chunk in chunks for k in chunk})
    step = max(1, (len(flat) + len(chunks) - 1) // len(chunks))
    chunks = [flat[i : i + step] for i in range(0, len(flat), step)] or [[]]
    probes = sorted(probes)
    results = {}
    for backend in ("python", "numpy"):
        with kernels.use_backend(backend):
            stores = [kernels.gapped_key_store(c, len(c) + 2) for c in chunks]
            ns = [len(c) for c in chunks]
            combined, offsets = kernels.concat_stores(stores, ns)
            col = kernels.key_array(probes)
            owners, locals_ = kernels.probe_positions(
                combined, sum(ns), list(offsets), col, len(probes)
            )
            results[backend] = ([int(o) for o in owners],
                                [int(i) for i in locals_])
    assert results["python"] == results["numpy"]
    owners, locals_ = results["python"]
    for t, key in enumerate(probes):
        if owners[t] >= 0:
            assert chunks[owners[t]][locals_[t]] == key
        else:
            assert all(key not in chunk for chunk in chunks)


@requires_numpy
@given(batch=st.lists(st.tuples(st.integers(0, 50), st.integers(0, 5)),
                      max_size=40))
@settings(max_examples=60, deadline=None)
def test_dedup_column_kernels_match(batch):
    batch = sorted([(k, f"v{k}.{s}") for k, s in batch])
    results = {}
    for backend in ("python", "numpy"):
        with kernels.use_backend(backend):
            col = kernels.key_array([k for k, _v in batch])
            deduped, col2 = kernels.dedup_sorted_items_col(list(batch), col)
            results[backend] = (
                deduped,
                [int(k) for k in col2],
                kernels.column_strictly_increasing(col),
            )
    assert results["python"] == results["numpy"]
    deduped, col2, _ = results["python"]
    assert col2 == [k for k, _v in deduped]
    assert kernels.column_strictly_increasing(col2) or not deduped


# ----------------------------------------------------------------------
# gapped-specific machinery
# ----------------------------------------------------------------------
class TestConfig:
    def test_rejects_unknown_layout(self):
        with pytest.raises(ConfigError):
            BPlusTreeConfig(node_layout="packed")

    def test_rejects_out_of_range_high_water(self):
        for bad in (0.4, 1.1):
            with pytest.raises(ConfigError):
                BPlusTreeConfig(gap_high_water=bad)

    def test_gapped_is_default(self):
        assert BPlusTreeConfig().node_layout == "gapped"


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
@pytest.mark.parametrize("weird", [SENTINEL, 2**70, -(2**70)])
class TestDemotion:
    def test_unrepresentable_key_demotes_and_serves(self, backend, weird):
        with kernels.use_backend(backend):
            tree = _tree("gapped")
            tree.insert_many([(k, f"v{k}") for k in range(10)])
            tree.insert(weird, "weird")
            assert tree.get(weird) == "weird"
            # The leaf that absorbed the key fell back to a plain list store.
            leaf = tree._head_leaf
            demoted = []
            while leaf is not None:
                demoted.append(type(leaf.ks) is list)
                leaf = leaf.next_leaf
            assert any(demoted)
            tree.insert(weird - 1, "w2")
            assert tree.get(weird - 1) == "w2"
            assert tree.delete(weird) is True
            assert tree.get(weird) is None
            tree.check_invariants()


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
def test_fission_replaces_split_storm(backend):
    """A big run landing in one leaf rebuilds it in one structural event."""
    with kernels.use_backend(backend):
        tree = _tree("gapped", leaf_capacity=8)
        tree.insert_many([(k, k) for k in range(0, 1000, 10)])
        before = tree.leaf_splits
        tree.insert_many([(k, k) for k in range(101, 161)])  # one-leaf run
        assert tree.leaf_fissions >= 1
        counts = tree.meter.snapshot()
        assert counts.get("leaf_fission", 0) == tree.leaf_fissions
        # The run did not cascade through per-key splits.
        assert tree.leaf_splits - before <= 1
        tree.check_invariants()

    with kernels.use_backend(backend):
        classic = _tree("classic", leaf_capacity=8)
        classic.insert_many([(k, k) for k in range(0, 1000, 10)])
        classic.insert_many([(k, k) for k in range(101, 161)])
        assert classic.leaf_fissions == 0


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
@pytest.mark.parametrize("layout", ["classic", "gapped"])
def test_space_stats_physical_identity(backend, layout):
    with kernels.use_backend(backend):
        tree = _tree(layout, leaf_capacity=8)
        tree.insert_many([(k, k) for k in range(500)])
        tree.delete(3)
        stats = tree.space_stats()
        assert stats["physical_slots"] - stats["gap_slots"] == (
            stats["logical_entries"]
        )
        assert stats["logical_entries"] == len(tree)
        if layout == "gapped":
            assert stats["physical_slots"] == tree.leaf_count * (8 + 1)
            assert 0.0 < stats["physical_fill"] <= 1.0


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
def test_checkpoint_round_trip_preserves_gapped_layout(backend):
    with kernels.use_backend(backend):
        tree = _tree("gapped", leaf_capacity=6)
        tree.insert_many([(k, f"v{k}") for k in range(300)])
        tree.insert(SENTINEL, "weird")  # demoted leaf must survive too
        restored = deserialize_btree(serialize_btree(tree))
        assert restored.config.node_layout == "gapped"
        assert isinstance(restored._head_leaf, GappedLeaf)
        assert restored._root.is_leaf or isinstance(restored._root, GappedInternal)
        assert list(restored.iter_items()) == list(tree.iter_items())
        assert len(restored) == len(tree)
        assert (restored.min_key, restored.max_key) == (tree.min_key, tree.max_key)
        assert restored.get(SENTINEL) == "weird"
        restored.check_invariants()
        restored.insert(9999, "post")
        assert restored.get(9999) == "post"


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
def test_coalesced_probe_cache_invalidation(backend):
    """get_many's leaf-column cache never serves stale answers."""
    with kernels.use_backend(backend):
        tree = _tree("gapped", leaf_capacity=8)
        tree.insert_many([(k, k) for k in range(0, 400, 2)])
        assert tree.get_many([100, 101]) == [100, None]  # builds the cache
        tree.insert(101, "fresh")
        assert tree.get_many([100, 101]) == [100, "fresh"]
        tree.delete(100)
        assert tree.get_many([100, 101]) == [None, "fresh"]
        tree.insert_many([(k, "bulk") for k in range(401, 430, 2)])
        assert tree.get_many([401, 429]) == ["bulk", "bulk"]
        tree.bulk_load_append([(1000, "tail")])
        assert tree.get_many([1000]) == ["tail"]


def test_profiler_classifies_gapped_modules():
    """Sampling profiles must attribute the new hot modules to layers."""
    assert layer_for_module("repro.btree.btree") == "btree"
    assert layer_for_module("repro.btree.node") == "btree"
    assert layer_for_module("repro.kernels.python_kernels") == "kernels"
    assert layer_for_module("repro.kernels.numpy_kernels") == "kernels"
