"""Tests for the repro.obs observability layer and bench telemetry."""

import json

import pytest

from repro.bench.telemetry import (
    SCHEMA,
    build_bench_artifact,
    save_bench_artifact,
    validate_bench_artifact,
)
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    NULL_OBS,
    MetricsRegistry,
    Observability,
    Tracer,
    current_obs,
    observe,
)
from repro.obs.export import render_trace, snapshot_to_prometheus, to_prometheus
from repro.obs.registry import Histogram, sanitize_name
from repro.obs.tracer import NULL_SPAN


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("ops").inc(-1)

    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("fill")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_name_sanitization(self):
        assert sanitize_name("a.b c-d") == "a_b_c_d"
        assert sanitize_name("9lives").startswith("_")


class TestHistogram:
    def test_bucket_boundaries_inclusive_upper(self):
        # Prometheus `le` semantics: a value equal to a bound lands in that
        # bound's bucket, one above it lands in the next.
        hist = Histogram("h", buckets=[10.0, 20.0, 30.0])
        hist.observe(10.0)
        hist.observe(10.1)
        hist.observe(20.0)
        hist.observe(30.1)  # overflow -> +Inf bucket
        assert hist.counts == [1, 2, 0, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(70.2)

    def test_below_first_bound(self):
        hist = Histogram("h", buckets=[10.0, 20.0])
        hist.observe(0.0)
        assert hist.counts == [1, 0, 0]

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[10.0, 10.0])

    def test_cumulative(self):
        hist = Histogram("h", buckets=[1.0, 2.0])
        for v in (0.5, 1.5, 1.7, 5.0):
            hist.observe(v)
        assert hist.cumulative() == [(1.0, 1), (2.0, 3), (float("inf"), 4)]

    def test_percentiles_interpolate(self):
        hist = Histogram("h", buckets=[100.0, 200.0])
        for _ in range(100):
            hist.observe(150.0)  # all in the (100, 200] bucket
        p50 = hist.percentile(50.0)
        assert 100.0 < p50 <= 200.0
        assert hist.percentile(0.0) <= p50 <= hist.percentile(99.0)

    def test_percentile_empty_and_bounds(self):
        hist = Histogram("h", buckets=[1.0])
        assert hist.percentile(50.0) == 0.0
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_percentile_overflow_clamps_to_last_bound(self):
        hist = Histogram("h", buckets=[1.0, 2.0])
        hist.observe(100.0)
        assert hist.percentile(99.0) == 2.0

    def test_mean(self):
        hist = Histogram("h", buckets=[10.0])
        hist.observe(4.0)
        hist.observe(6.0)
        assert hist.mean == 5.0


class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.event("x", a=1)
        with tracer.span("y"):
            pass
        assert len(tracer) == 0
        assert tracer.recorded == 0

    def test_disabled_span_is_shared_null(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b") is tracer.span("c")

    def test_enabled_event(self):
        tracer = Tracer(enabled=True)
        tracer.event("flush", entries=10)
        (event,) = tracer.events()
        assert event.name == "flush"
        assert event.attrs == {"entries": 10}
        assert event.dur_ns is None

    def test_span_duration_and_nesting(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            tracer.event("inner_event")
            with tracer.span("inner"):
                pass
            outer.set(entries=3)
        events = tracer.events()
        names = [e.name for e in events]
        # Spans record at exit: inner completes before outer.
        assert names == ["inner_event", "inner", "outer"]
        by_name = {e.name: e for e in events}
        assert by_name["inner_event"].depth == 1
        assert by_name["inner"].depth == 1
        assert by_name["outer"].depth == 0
        assert by_name["outer"].dur_ns >= by_name["inner"].dur_ns >= 0
        assert by_name["outer"].attrs == {"entries": 3}

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3, enabled=True)
        for i in range(5):
            tracer.event(f"e{i}")
        assert [e.name for e in tracer.events()] == ["e2", "e3", "e4"]
        assert tracer.dropped == 2
        assert tracer.recorded == 5

    def test_enable_disable_toggle(self):
        tracer = Tracer()
        tracer.enable()
        tracer.event("a")
        tracer.disable()
        tracer.event("b")
        assert [e.name for e in tracer.events()] == ["a"]

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.event("a")
        tracer.clear()
        assert len(tracer) == 0 and tracer.recorded == 0


class TestObservabilityFacade:
    def test_null_obs_is_inert(self):
        assert NULL_OBS.enabled is False
        NULL_OBS.event("x")
        NULL_OBS.count("c")
        NULL_OBS.gauge("g", 1.0)
        NULL_OBS.observe_hist("h", 1.0)
        NULL_OBS.record_run({})
        with NULL_OBS.span("s") as span:
            span.set(a=1)
        assert NULL_OBS.register_collector("n", dict) == "n"

    def test_current_obs_defaults_to_null(self):
        assert current_obs() is NULL_OBS

    def test_observe_installs_and_restores(self):
        obs = Observability()
        with observe(obs) as installed:
            assert installed is obs
            assert current_obs() is obs
            inner = Observability()
            with observe(inner):
                assert current_obs() is inner
            assert current_obs() is obs
        assert current_obs() is NULL_OBS

    def test_collector_names_deduplicate(self):
        obs = Observability()
        assert obs.register_collector("sware", dict) == "sware"
        assert obs.register_collector("sware", dict) == "sware_2"
        assert obs.register_collector("sware", dict) == "sware_3"

    def test_helpers_hit_registry(self):
        obs = Observability()
        obs.count("ops", 2)
        obs.gauge("fill", 0.5)
        obs.observe_hist("sizes", 3.0, buckets=DEFAULT_SIZE_BUCKETS)
        snap = obs.registry.snapshot()
        assert snap["counters"]["ops"] == 2
        assert snap["gauges"]["fill"] == 0.5
        assert snap["histograms"]["sizes"]["count"] == 1


class TestRegistrySnapshot:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(7)
        registry.gauge("fill").set(0.25)
        hist = registry.histogram("lat", buckets=[10.0, 100.0])
        for v in (5.0, 50.0, 500.0):
            hist.observe(v)
        registry.register_collector("pool", lambda: {"hits": 3, "skip": None})
        return registry

    def test_snapshot_shape(self):
        snap = self._populated().snapshot()
        assert snap["counters"] == {"ops": 7.0}
        assert snap["gauges"] == {"fill": 0.25, "pool_hits": 3.0}
        hist = snap["histograms"]["lat"]
        assert hist["buckets"] == [10.0, 100.0]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3
        assert {"p50", "p95", "p99"} <= set(hist)

    def test_snapshot_round_trips(self):
        snap = self._populated().snapshot()
        restored = MetricsRegistry.from_snapshot(snap)
        assert restored.snapshot() == snap

    def test_snapshot_is_json_serializable(self):
        snap = self._populated().snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestSinglePoll:
    """Stateful collectors are charged exactly once per export cycle."""

    def _registry_with_counting_collector(self):
        registry = MetricsRegistry()
        polls = {"n": 0}

        def collect():
            polls["n"] += 1
            return {"value": float(polls["n"])}

        registry.register_collector("src", collect)
        return registry, polls

    def test_snapshot_poll_false_reuses_previous_poll(self):
        registry, polls = self._registry_with_counting_collector()
        first = registry.snapshot()
        assert polls["n"] == 1
        second = registry.snapshot(poll=False)
        assert polls["n"] == 1  # not charged again
        assert second["gauges"] == first["gauges"]
        third = registry.snapshot()  # a fresh cycle polls again
        assert polls["n"] == 2
        assert third["gauges"]["src_value"] == 2.0

    def test_poll_false_before_any_poll_still_collects(self):
        registry, polls = self._registry_with_counting_collector()
        gauges = registry.collect_gauges(poll=False)
        assert polls["n"] == 1
        assert gauges["src_value"] == 1.0

    def test_bench_artifact_agrees_with_rendered_stats(self):
        from repro.bench.telemetry import build_bench_artifact

        registry, polls = self._registry_with_counting_collector()
        obs = Observability()
        obs.registry = registry
        obs.record_run(
            {"phases": [{"name": "p", "n_ops": 1, "sim_ns": 1, "wall_ns": 1}],
             "bucket_sim_ns": {}, "counts": {}}
        )
        rendered = snapshot_to_prometheus(registry.snapshot())
        doc = build_bench_artifact("unit", obs, poll=False)
        assert polls["n"] == 1  # one poll served both exports
        assert snapshot_to_prometheus(doc["metrics"]) == rendered


class TestExporters:
    def test_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(3)
        registry.gauge("fill").set(0.5)
        hist = registry.histogram("lat", buckets=[10.0, 100.0])
        hist.observe(5.0)
        hist.observe(50.0)
        text = to_prometheus(registry)
        assert "# TYPE repro_ops counter" in text
        assert "repro_ops 3" in text
        assert "# TYPE repro_fill gauge" in text
        assert 'repro_lat_bucket{le="10"} 1' in text
        assert 'repro_lat_bucket{le="100"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_count 2" in text
        assert "repro_lat_sum 55" in text

    def test_prometheus_from_saved_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(1)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snapshot_to_prometheus(snap) == to_prometheus(registry)

    def test_empty_registry_renders_empty_exposition(self):
        assert to_prometheus(MetricsRegistry()) == "\n"
        assert snapshot_to_prometheus({}) == "\n"

    def test_help_lines_for_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("ops", help="operations applied")
        registry.gauge("fill")
        registry.histogram("lat", buckets=[10.0])
        text = to_prometheus(registry)
        # Explicit help text when given, generated fallback otherwise.
        assert "# HELP repro_ops operations applied" in text
        assert "# HELP repro_fill fill (gauge)" in text
        assert "# HELP repro_lat lat (histogram)" in text

    def test_nan_and_infinite_gauges_spelled_per_exposition_format(self):
        snap = {
            "gauges": {
                "broken": float("nan"),
                "ceiling": float("inf"),
                "floor": float("-inf"),
            }
        }
        text = snapshot_to_prometheus(snap)
        assert "repro_broken NaN" in text
        assert "repro_ceiling +Inf" in text
        assert "repro_floor -Inf" in text
        assert "nan" not in text  # repr() spelling would break scrapers

    def test_snapshot_names_sanitized_on_the_way_out(self):
        # An artifact may carry names a live registry would have rejected.
        text = snapshot_to_prometheus({"counters": {"op.latency-total": 2}})
        assert "repro_op_latency_total 2" in text

    def test_inf_bucket_bound_in_snapshot_histogram(self):
        snap = {
            "histograms": {
                "h": {
                    "buckets": [1.0, float("inf")],
                    "counts": [1, 2, 0],
                    "sum": 5.0,
                    "count": 3,
                }
            }
        }
        text = snapshot_to_prometheus(snap)
        assert 'repro_h_bucket{le="1"} 1' in text
        assert text.count('le="+Inf"') == 2  # the inf bound + the closing bucket
        assert "repro_h_count 3" in text

    def test_render_trace(self):
        tracer = Tracer(enabled=True)
        with tracer.span("flush", entries=4):
            tracer.event("sort", algorithm="kl")
        text = render_trace(tracer)
        assert "flush" in text and "sort" in text
        assert "algorithm=kl" in text
        assert "ms" in text

    def test_render_trace_empty(self):
        assert "no trace events" in render_trace(Tracer(enabled=True))

    def test_render_trace_limit(self):
        tracer = Tracer(enabled=True)
        for i in range(10):
            tracer.event(f"e{i}")
        text = render_trace(tracer, limit=2)
        assert "e9" in text and "e0" not in text


class TestComponentIntegration:
    """The obs layer threads through index construction via the context."""

    def _run_workload(self, obs):
        from repro.bench.experiments import common
        from repro.bench.runner import run_phases

        keys = common.keys_for(2000, 0.10, 0.05, seed=3)
        ops = common.mixed_ops(keys, 0.3, seed=3)
        return run_phases(
            common.sa_btree_factory(common.buffer_config(2000, 0.01)),
            [("mixed", ops)],
            label="SA",
            obs=obs,
        )

    def test_run_phases_populates_registry_and_trace(self):
        obs = Observability(trace=True)
        result = self._run_workload(obs)
        snap = obs.registry.snapshot()
        # Per-op latency distributions were recorded.
        assert snap["histograms"]["op_insert_latency_ns"]["count"] == 2000
        assert snap["histograms"]["op_lookup_latency_ns"]["count"] > 0
        # Flush-size histograms from the SWARE hot path.
        assert snap["histograms"]["sware_flush_entries"]["count"] > 0
        # SWAREStats and the Meter surface through collectors.
        assert snap["gauges"]["sware_inserts"] == 2000
        assert any(name.startswith("meter_SA") for name in snap["gauges"])
        assert any(name.startswith("btree_") for name in snap["gauges"])
        # Structured events were traced.
        names = {event.name for event in obs.tracer.events()}
        assert "sware.flush_cycle" in names
        assert "run.phase" in names
        # The serialized run was recorded for the bench artifact.
        assert len(obs.runs) == 1
        assert obs.runs[0]["label"] == "SA"
        assert obs.runs[0]["phases"][0]["n_ops"] == result.n_ops

    def test_run_without_obs_stays_dark(self):
        result = self._run_workload(None)
        assert current_obs() is NULL_OBS
        assert result.n_ops > 0

    def test_index_constructed_under_observe_registers(self):
        from repro.btree.btree import BPlusTree
        from repro.core.sware import SortednessAwareIndex
        from repro.storage.costmodel import Meter

        obs = Observability()
        with observe(obs):
            index = SortednessAwareIndex(BPlusTree(), meter=Meter())
        assert index.obs is obs
        for key in range(100):
            index.insert(key, key)
        assert obs.registry.snapshot()["gauges"]["sware_inserts"] == 100

    def test_bufferpool_eviction_traced(self):
        from repro.storage.bufferpool import BufferPool

        obs = Observability(trace=True)
        pool = BufferPool(capacity=2, obs=obs)
        for page in range(4):
            pool.access(page)
        names = [e.name for e in obs.tracer.events()]
        assert names.count("pool.evict") == 2
        assert obs.registry.snapshot()["gauges"]["bufferpool_evictions"] == 2


class TestBenchTelemetry:
    def _artifact(self, trace=True):
        obs = Observability(trace=trace)
        from repro.bench.experiments import common
        from repro.bench.runner import run_phases

        keys = common.keys_for(1000, 0.10, 0.05, seed=5)
        ops = common.mixed_ops(keys, 0.2, seed=5)
        run_phases(
            common.sa_btree_factory(common.buffer_config(1000, 0.01)),
            [("mixed", ops)],
            label="SA",
            obs=obs,
        )
        return build_bench_artifact("unit", obs)

    def test_artifact_is_schema_valid(self):
        doc = self._artifact()
        assert validate_bench_artifact(doc) == []
        assert doc["schema"] == SCHEMA
        assert doc["experiment"] == "unit"
        assert doc["trace"]["recorded"] > 0

    def test_artifact_round_trips_through_json(self, tmp_path):
        doc = self._artifact()
        path = save_bench_artifact(doc, tmp_path / "BENCH_unit.json")
        loaded = json.loads(path.read_text())
        assert validate_bench_artifact(loaded) == []
        assert loaded["runs"][0]["phases"][0]["name"] == "mixed"

    def test_default_save_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        doc = self._artifact()
        path = save_bench_artifact(doc)
        assert path.name == "BENCH_unit.json"
        assert path.parent == tmp_path

    def test_validator_flags_problems(self):
        assert validate_bench_artifact([]) == ["artifact is not a JSON object"]
        errors = validate_bench_artifact({"schema": "nope"})
        assert any("schema" in e for e in errors)
        assert any("runs" in e for e in errors)
        assert any("metrics" in e for e in errors)
        doc = self._artifact()
        doc["runs"][0]["phases"][0].pop("sim_ns")
        assert any("sim_ns" in e for e in validate_bench_artifact(doc))
        doc = self._artifact()
        doc["metrics"]["histograms"]["op_insert_latency_ns"].pop("p95")
        assert any("p95" in e for e in validate_bench_artifact(doc))
        doc = self._artifact()
        doc["metrics"]["histograms"]["op_insert_latency_ns"]["counts"] = [1]
        assert any("+Inf" in e for e in validate_bench_artifact(doc))


class TestCLI:
    def test_experiment_json_writes_valid_artifact(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        out = tmp_path / "out.json"
        assert main(["experiment", "fig13", "--n", "1000", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_bench_artifact(doc) == []
        assert doc["experiment"] == "fig13"
        assert (tmp_path / "BENCH_fig13.json").exists()
        assert "Fig. 13" in capsys.readouterr().out

    def test_stats_prometheus_output(self, capsys):
        from repro.cli import main

        assert main(["stats", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_op_insert_latency_ns histogram" in out
        assert "repro_sware_inserts" in out

    def test_stats_human_output(self, capsys):
        from repro.cli import main

        assert main(["stats", "--n", "1500", "--human"]) == 0
        out = capsys.readouterr().out
        assert "p95" in out and "op_insert_latency_ns" in out

    def test_stats_from_artifact(self, tmp_path, capsys):
        from repro.cli import main

        doc = TestBenchTelemetry()._artifact()
        path = save_bench_artifact(doc, tmp_path / "BENCH_unit.json")
        capsys.readouterr()
        assert main(["stats", "--from", str(path)]) == 0
        assert "repro_op_insert_latency_ns_bucket" in capsys.readouterr().out

    def test_stats_from_artifact_round_trip_parity(self, tmp_path, capsys):
        # The exposition rendered from a saved artifact must equal the one
        # rendered from the in-memory snapshot the artifact was built from.
        from repro.cli import main

        doc = TestBenchTelemetry()._artifact()
        expected = snapshot_to_prometheus(doc["metrics"])
        path = save_bench_artifact(doc, tmp_path / "BENCH_unit.json")
        capsys.readouterr()
        assert main(["stats", "--from", str(path)]) == 0
        assert capsys.readouterr().out == expected

    def test_trace_output(self, capsys):
        from repro.cli import main

        assert main(["trace", "--n", "1500", "--limit", "50"]) == 0
        out = capsys.readouterr().out
        assert "sware.flush_cycle" in out
