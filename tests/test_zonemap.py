"""Tests for repro.core.zonemap."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.zonemap import PageZonemaps, Zonemap


class TestZonemap:
    def test_empty_contains_nothing(self):
        zm = Zonemap()
        assert zm.is_empty
        assert not zm.may_contain(0)
        assert not zm.overlaps(0, 100)

    def test_single_key(self):
        zm = Zonemap()
        zm.update(5)
        assert zm.may_contain(5)
        assert not zm.may_contain(4)
        assert not zm.may_contain(6)

    def test_range_tracking(self):
        zm = Zonemap()
        for key in (10, 3, 7):
            zm.update(key)
        assert zm.as_tuple() == (3, 10)
        assert zm.may_contain(5)
        assert not zm.may_contain(11)

    def test_overlap_edges(self):
        zm = Zonemap()
        zm.update(10)
        zm.update(20)
        assert zm.overlaps(20, 30)
        assert zm.overlaps(0, 10)
        assert not zm.overlaps(21, 30)
        assert not zm.overlaps(0, 9)

    def test_reset(self):
        zm = Zonemap()
        zm.update(1)
        zm.reset()
        assert zm.is_empty

    @given(st.lists(st.integers(), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_never_false_negative(self, keys):
        zm = Zonemap()
        for key in keys:
            zm.update(key)
        assert all(zm.may_contain(key) for key in keys)


class TestPageZonemaps:
    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            PageZonemaps(0)

    def test_pages_grow_on_demand(self):
        pz = PageZonemaps(4)
        assert pz.n_pages == 0
        pz.observe(0, 10)
        assert pz.n_pages == 1
        pz.observe(9, 99)  # position 9 -> page 2
        assert pz.n_pages == 3

    def test_page_membership(self):
        pz = PageZonemaps(2)
        pz.observe(0, 10)
        pz.observe(1, 20)
        pz.observe(2, 100)
        assert pz.page_may_contain(0, 15)
        assert not pz.page_may_contain(0, 21)
        assert pz.page_may_contain(1, 100)
        assert not pz.page_may_contain(5, 100)  # nonexistent page

    def test_page_overlaps(self):
        pz = PageZonemaps(2)
        pz.observe(0, 10)
        pz.observe(1, 20)
        assert pz.page_overlaps(0, 15, 30)
        assert not pz.page_overlaps(0, 21, 30)
        assert not pz.page_overlaps(3, 0, 1000)

    def test_reset(self):
        pz = PageZonemaps(2)
        pz.observe(0, 1)
        pz.reset()
        assert pz.n_pages == 0
        assert not pz.page_may_contain(0, 1)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_every_observed_key_found_in_its_page(self, keys):
        pz = PageZonemaps(8)
        for position, key in enumerate(keys):
            pz.observe(position, key)
        for position, key in enumerate(keys):
            assert pz.page_may_contain(position // 8, key)
