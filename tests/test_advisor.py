"""Tests for the configuration advisor."""

import pytest

from repro.core.advisor import recommend, recommend_for_sample
from repro.core.sware import SortednessAwareIndex
from repro.btree.btree import BPlusTree
from repro.sortedness.generator import generate_kl_keys, scrambled_keys


class TestRules:
    def test_near_sorted_uses_sware(self):
        rec = recommend(0.10, 0.05, read_fraction=0.5)
        assert rec.use_sware
        assert rec.split_factor == 0.8
        assert rec.flush_fraction == 0.5

    def test_scrambled_in_memory_uses_baseline(self):
        rec = recommend(1.0, 1.0, read_fraction=0.5)
        assert not rec.use_sware
        assert rec.split_factor == 0.5

    def test_scrambled_on_disk_uses_sware(self):
        rec = recommend(1.0, 1.0, read_fraction=0.5, on_disk=True)
        assert rec.use_sware

    def test_read_dominated_uses_baseline(self):
        rec = recommend(0.0, 0.0, read_fraction=0.995)
        assert not rec.use_sware

    def test_write_only_disables_query_sorting(self):
        rec = recommend(0.10, 0.05, read_fraction=0.0)
        assert rec.query_sorting_threshold == 1.0

    def test_buffer_scales_with_l(self):
        small = recommend(0.10, 0.02).buffer_fraction
        large = recommend(0.10, 0.50).buffer_fraction
        assert large > small
        assert large <= 0.05

    def test_rationale_always_given(self):
        for args in ((0.1, 0.05, 0.5), (1.0, 1.0, 0.5), (0.0, 0.0, 1.0)):
            assert recommend(*args).rationale

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            recommend(1.5, 0.1)
        with pytest.raises(ValueError):
            recommend(0.1, 0.1, read_fraction=2.0)


class TestMaterialization:
    def test_sware_config_valid(self):
        config = recommend(0.10, 0.05).sware_config(50_000)
        assert config.buffer_capacity >= 16
        assert config.buffer_capacity % config.page_size == 0

    def test_tiny_dataset_config_still_valid(self):
        config = recommend(0.10, 0.05).sware_config(100)
        assert config.buffer_capacity >= 2 * config.page_size

    def test_build_sware_index(self):
        index = recommend(0.10, 0.05).build(10_000)
        assert isinstance(index, SortednessAwareIndex)
        index.insert(1, "x")
        assert index.get(1) == "x"

    def test_build_baseline(self):
        index = recommend(1.0, 1.0).build(10_000)
        assert isinstance(index, BPlusTree)


class TestSampleBased:
    def test_near_sorted_sample(self):
        keys = generate_kl_keys(5000, 0.10, 0.05, seed=3)
        rec = recommend_for_sample(keys, read_fraction=0.25)
        assert rec.use_sware
        assert "measured sample" in rec.rationale[0]

    def test_scrambled_sample(self):
        keys = scrambled_keys(5000, seed=3)
        rec = recommend_for_sample(keys, read_fraction=0.5)
        assert not rec.use_sware

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            recommend_for_sample([])

    def test_recommended_index_beats_baseline_on_its_workload(self):
        """End-to-end: following the advice pays off."""
        from repro.bench.experiments import common
        from repro.bench.runner import run_phases, speedup

        n = 6000
        keys = common.keys_for(n, 0.10, 0.05, seed=7)
        rec = recommend_for_sample(list(keys), read_fraction=0.25)
        ops = common.mixed_ops(keys, 0.25, seed=7)
        base = run_phases(common.baseline_btree_factory(), [("mixed", ops)])
        advised = run_phases(lambda meter: rec.build(n, meter=meter), [("mixed", ops)])
        assert speedup(base, advised) > 1.3
