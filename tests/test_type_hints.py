"""Every public annotation in the library must actually resolve.

``from __future__ import annotations`` makes annotations lazy strings, so
a missing import (like the ``Sequence`` that buffer.py used without
importing) is invisible until something calls ``typing.get_type_hints()``
— as dataclass tooling, runtime validators, and IDEs do. This walk forces
resolution for the public API of every ``repro.*`` module.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import typing

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_functions(module):
    """(owner, function) pairs for the module's public API."""
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are resolved where they are defined
        if inspect.isfunction(obj):
            yield f"{module.__name__}.{name}", obj
        elif inspect.isclass(obj):
            for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                yield f"{module.__name__}.{name}.{method_name}", method


def test_all_public_annotations_resolve():
    failures = []
    checked = 0
    for module in _iter_modules():
        for label, fn in _public_functions(module):
            checked += 1
            try:
                # The defining module's globals stand in for synthetic
                # function namespaces (NamedTuple's generated __new__
                # carries a fake __globals__ without real builtins).
                typing.get_type_hints(fn, globalns=dict(vars(module)))
            except NameError as exc:
                failures.append(f"{label}: {exc}")
    assert checked > 200, f"walked suspiciously little API ({checked} functions)"
    assert not failures, "unresolvable annotations:\n" + "\n".join(failures)


def test_buffer_add_many_regression():
    """The original bug: ``Sequence`` used in ``add_many`` unimported."""
    from repro.core.buffer import SWAREBuffer

    hints = typing.get_type_hints(SWAREBuffer.add_many)
    assert "pairs" in hints
