"""Cross-backend equivalence: learned and cracking vs the B+-tree oracle.

The SOSD bench only means something if every competitor implements the
same :class:`~repro.core.sware.TreeBackend` semantics. This suite replays
deterministic op programs (inserts with overwrites, deletes including
absent keys, point/batch lookups, inclusive ranges, bulk appends) against
:class:`~repro.learned.LearnedIndex` and
:class:`~repro.learned.CrackingIndex` side by side with a
:class:`~repro.btree.btree.BPlusTree`, under **both** kernel backends, and
demands indistinguishable observable behaviour. It also pins batch-vs-
sequential parity and the documented checkpointing contract
(:class:`~repro.errors.CheckpointUnsupportedError` — these backends have no
page-serializable node structure).
"""

import random

import pytest

from repro import kernels
from repro.btree.btree import BPlusTree
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex, TreeBackend
from repro.errors import BulkLoadError, CheckpointUnsupportedError
from repro.learned import (
    CrackingIndex,
    CrackingIndexConfig,
    LearnedIndex,
    LearnedIndexConfig,
)
from repro.storage.pagefile import CheckpointStore

HAS_NUMPY = kernels.numpy_available()
BOTH_BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])

KEY_SPACE = 5_000


def make_learned():
    # Small thresholds so programs of a few hundred ops cross the delta
    # fold / model rebuild paths several times.
    return LearnedIndex(LearnedIndexConfig(epsilon=8, delta_capacity=24))


def make_cracking():
    return CrackingIndex(CrackingIndexConfig(delta_capacity=24))


COMPETITORS = [("learned", make_learned), ("cracking", make_cracking)]


def op_program(seed, n_ops):
    """A deterministic op program exercising every TreeBackend entry point."""
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        key = rng.randrange(KEY_SPACE)
        if roll < 0.45:
            ops.append(("insert", key, rng.randrange(10**6)))
        elif roll < 0.55:
            ops.append(("delete", key))
        elif roll < 0.75:
            ops.append(("get", key))
        elif roll < 0.90:
            ops.append(("range", key, key + rng.randrange(0, 200)))
        elif roll < 0.95:
            chunk = [
                (rng.randrange(KEY_SPACE), rng.randrange(10**6))
                for _ in range(rng.randrange(1, 12))
            ]
            ops.append(("insert_many", chunk))
        else:
            ops.append(("bulk_append", rng.randrange(1, 8)))
    return ops


def replay(index, oracle, ops):
    """Apply ``ops`` to both structures, asserting identical observables."""
    for op in ops:
        if op[0] == "insert":
            _, key, value = op
            assert index.insert(key, value) == oracle.insert(key, value)
        elif op[0] == "delete":
            _, key = op
            assert index.delete(key) == oracle.delete(key)
        elif op[0] == "get":
            _, key = op
            assert index.get(key) == oracle.get(key)
        elif op[0] == "range":
            _, lo, hi = op
            assert index.range_query(lo, hi) == oracle.range_query(lo, hi)
        elif op[0] == "insert_many":
            _, chunk = op
            assert index.insert_many(chunk) == oracle.insert_many(chunk)
        else:  # bulk_append: strictly increasing keys above both max keys
            _, count = op
            base = max(
                index.max_key if index.max_key is not None else -1,
                KEY_SPACE,
            )
            chunk = [(base + 1 + i, base + i) for i in range(count)]
            index.bulk_load_append(chunk)
            oracle.bulk_load_append(chunk)
        assert index.max_key == oracle.max_key
        assert index.min_key == oracle.min_key


@pytest.mark.parametrize("kernel_backend", BOTH_BACKENDS)
@pytest.mark.parametrize("name,factory", COMPETITORS)
class TestOpProgramsVsOracle:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_program_equivalence(self, name, factory, kernel_backend, seed):
        with kernels.use_backend(kernel_backend):
            index, oracle = factory(), BPlusTree()
            replay(index, oracle, op_program(seed, 400))
            full = oracle.range_query(-(1 << 62), 1 << 62)
            assert index.range_query(-(1 << 62), 1 << 62) == full
            assert sorted(index.iter_items()) == full
            index.check_invariants()

    def test_protocol_conformance(self, name, factory, kernel_backend):
        with kernels.use_backend(kernel_backend):
            assert isinstance(factory(), TreeBackend)

    def test_bulk_load_validation_matches_btree(self, name, factory, kernel_backend):
        with kernels.use_backend(kernel_backend):
            index, oracle = factory(), BPlusTree()
            for structure in (index, oracle):
                structure.bulk_load_append([(10, "a"), (20, "b")])
                with pytest.raises(BulkLoadError):
                    structure.bulk_load_append([(5, "x")])  # below max_key
                with pytest.raises(BulkLoadError):
                    structure.bulk_load_append([(30, "x"), (30, "y")])
            assert index.range_query(0, 100) == oracle.range_query(0, 100)


@pytest.mark.parametrize("kernel_backend", BOTH_BACKENDS)
@pytest.mark.parametrize("name,factory", COMPETITORS)
class TestBatchSequentialParity:
    def test_insert_many_matches_loop(self, name, factory, kernel_backend):
        rng = random.Random(99)
        items = [
            (rng.randrange(KEY_SPACE), rng.randrange(10**6)) for _ in range(800)
        ]
        with kernels.use_backend(kernel_backend):
            batched, sequential = factory(), factory()
            created_batch = batched.insert_many(items)
            created_seq = sum(bool(sequential.insert(k, v)) for k, v in items)
            assert created_batch == created_seq
            full = (-(1 << 62), 1 << 62)
            assert batched.range_query(*full) == sequential.range_query(*full)

    def test_get_many_matches_loop(self, name, factory, kernel_backend):
        rng = random.Random(77)
        with kernels.use_backend(kernel_backend):
            index = factory()
            index.insert_many(
                [(rng.randrange(KEY_SPACE), rng.randrange(10**6)) for _ in range(600)]
            )
            probes = [rng.randrange(KEY_SPACE) for _ in range(300)]
            assert index.get_many(probes) == [index.get(k) for k in probes]


class TestCheckpointContract:
    """Learned/cracking backends document explicit checkpoint non-support."""

    @pytest.mark.parametrize("name,factory", COMPETITORS)
    def test_raw_backend_checkpoint_raises(self, name, factory, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt.db"))
        with pytest.raises(CheckpointUnsupportedError, match="B\\+-tree"):
            store.save_btree(factory())

    @pytest.mark.parametrize("name,factory", COMPETITORS)
    def test_sware_wrapped_checkpoint_raises(self, name, factory, tmp_path):
        index = SortednessAwareIndex(
            factory(), config=SWAREConfig(buffer_capacity=32, page_size=8)
        )
        for k in range(50):
            index.insert(k * 3 % 97, k)
        store = CheckpointStore(str(tmp_path / "ckpt.db"))
        with pytest.raises(CheckpointUnsupportedError):
            store.save_index(index)

    def test_error_is_a_typeerror_subclass(self):
        # Callers that guard with ``except TypeError`` keep working.
        assert issubclass(CheckpointUnsupportedError, TypeError)

    def test_btree_still_checkpoints(self, tmp_path):
        tree = BPlusTree()
        for k in range(100):
            tree.insert(k, k)
        store = CheckpointStore(str(tmp_path / "ckpt.db"))
        assert store.save_btree(tree) > 0
        assert store.load_btree().range_query(0, 99) == tree.range_query(0, 99)


@pytest.mark.parametrize("name,factory", COMPETITORS)
class TestUnderSWARE:
    """The competitors must be drop-in substrates for the SWARE wrapper."""

    def test_sware_wrap_matches_btree_substrate(self, name, factory):
        cfg = SWAREConfig(buffer_capacity=32, page_size=8)
        wrapped = SortednessAwareIndex(factory(), config=cfg)
        oracle = SortednessAwareIndex(BPlusTree(), config=cfg)
        rng = random.Random(5)
        for step in range(1500):
            key = rng.randrange(KEY_SPACE)
            roll = rng.random()
            if roll < 0.6:
                wrapped.insert(key, step)
                oracle.insert(key, step)
            elif roll < 0.8:
                assert wrapped.get(key) == oracle.get(key)
            else:
                hi = key + rng.randrange(0, 100)
                assert wrapped.range_query(key, hi) == oracle.range_query(key, hi)
        wrapped.flush_all()
        oracle.flush_all()
        assert wrapped.items() == oracle.items()
