"""Tests for the benchmark runner and report formatting."""

import pytest

from repro.bench.report import (
    ascii_scatter,
    format_breakdown,
    format_matrix,
    format_table,
)
from repro.bench.runner import execute_operations, phase_speedup, run_phases, speedup
from repro.core.config import SWAREConfig
from repro.core.factory import make_baseline_btree, make_sa_btree
from repro.workloads.spec import DELETE, INSERT, LOOKUP, RANGE


def baseline_factory(meter):
    return make_baseline_btree(meter=meter)


def sa_factory(meter):
    return make_sa_btree(
        SWAREConfig(buffer_capacity=64, page_size=8), meter=meter
    )


class TestExecute:
    def test_dispatches_all_ops(self):
        index = make_baseline_btree()
        ops = [
            (INSERT, 1, 10),
            (INSERT, 2, 20),
            (LOOKUP, 1, 0),
            (RANGE, 0, 5),
            (DELETE, 1, 0),
        ]
        assert execute_operations(index, ops) == 5
        assert index.get(1) is None
        assert index.get(2) == 20

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            execute_operations(make_baseline_btree(), [(99, 0, 0)])


class TestRunPhases:
    def test_phases_measured_separately(self):
        ingest = [(INSERT, k, k) for k in range(200)]
        lookups = [(LOOKUP, k, 0) for k in range(100)]
        result = run_phases(
            baseline_factory, [("ingest", ingest), ("lookups", lookups)], label="x"
        )
        assert result.phase("ingest").n_ops == 200
        assert result.phase("lookups").n_ops == 100
        assert result.phase("ingest").sim_ns > 0
        assert result.n_ops == 300
        assert result.sim_ns == pytest.approx(
            result.phase("ingest").sim_ns + result.phase("lookups").sim_ns
        )

    def test_missing_phase_raises(self):
        result = run_phases(baseline_factory, [("only", [])])
        with pytest.raises(KeyError):
            result.phase("nope")

    def test_sware_stats_collected(self):
        ingest = [(INSERT, k, k) for k in range(200)]
        result = run_phases(sa_factory, [("ingest", ingest)])
        assert result.sware_stats["inserts"] == 200
        assert "leaf_splits" in result.index_stats

    def test_flush_after(self):
        ingest = [(INSERT, k, k) for k in range(100)]
        result = run_phases(sa_factory, [("ingest", ingest)], flush_after="ingest")
        total = (
            result.sware_stats["bulk_loaded_entries"]
            + result.sware_stats["top_inserted_entries"]
        )
        assert total == 100

    def test_speedup_helpers(self):
        ingest = [(INSERT, k, k) for k in range(500)]
        base = run_phases(baseline_factory, [("ingest", ingest)])
        sa = run_phases(sa_factory, [("ingest", ingest)])
        assert speedup(base, sa) > 1.0  # sorted ingest: SA wins
        assert phase_speedup(base, sa, "ingest") == pytest.approx(speedup(base, sa))

    def test_per_op_latency(self):
        ingest = [(INSERT, k, k) for k in range(100)]
        result = run_phases(baseline_factory, [("ingest", ingest)])
        assert result.sim_ns_per_op == pytest.approx(result.sim_ns / 100)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in text  # floats formatted to 2dp

    def test_format_matrix(self):
        text = format_matrix(
            ["r1", "r2"], ["c1", "c2"], lambda r, c: 1.5, row_header="rows"
        )
        assert "r1" in text and "c2" in text and "1.50" in text

    def test_ascii_scatter_bounds(self):
        text = ascii_scatter([0, 1, 2], [0, 1, 4], width=10, height=4)
        lines = text.splitlines()
        assert len(lines) == 6  # 4 rows + 2 borders
        assert all(len(line) == 12 for line in lines)

    def test_ascii_scatter_empty(self):
        assert "empty" in ascii_scatter([], [])

    def test_format_breakdown_shares_sum(self):
        text = format_breakdown("B", {"x": 75.0, "y": 25.0}, order=["x", "y"])
        assert "75.0%" in text and "25.0%" in text

    def test_save_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path / "out"))
        from repro.bench.report import save_report

        path = save_report("test_report", "hello\n")
        assert path.read_text() == "hello\n"
