"""Bit-identical equivalence of the python and numpy kernel backends.

The numpy kernels in :mod:`repro.kernels.numpy_kernels` are pure
constant-factor optimizations: for every kernel, both backends must return
*identical* values — the same hash words, the same Bloom bit patterns (byte
for byte, including under rotation), the same stable sort orders (so
duplicate/tombstone resolution is unchanged), the same metric values, the
same lookup and range results. These properties pin that contract, and the
accounting-parity tests pin that batch entry points bill ``probe_count`` /
``n_added`` exactly like sequential loops on *both* backends.

When numpy is absent, the cross-backend tests skip and the remaining tests
exercise the python reference backend alone.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.core.buffer import SWAREBuffer
from repro.core.config import SWAREConfig
from repro.errors import ConfigError
from repro.filters.bloom import BloomFilter

HAS_NUMPY = kernels.numpy_available()
requires_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not importable")

BOTH_BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])

# int64-range keys (the vectorizable common case) plus explicit boundaries.
i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
i64_edges = st.sampled_from([0, 1, -1, 2**63 - 1, -(2**63), 2**31, -(2**31)])
keys_st = st.lists(i64 | i64_edges, max_size=80)
small_keys_st = st.lists(st.integers(min_value=0, max_value=300), max_size=80)
# Keys outside uint64 range force the numpy backend's per-call fallback.
bignum_keys_st = st.lists(
    st.integers(min_value=-(2**100), max_value=2**100), min_size=1, max_size=20
)


def _both(fn, *args, **kwargs):
    """Run a kernel under both backends; return (python_result, numpy_result)."""
    with kernels.use_backend("python"):
        py = fn(*args, **kwargs)
    with kernels.use_backend("numpy"):
        np_res = fn(*args, **kwargs)
    return py, np_res


# ----------------------------------------------------------------------
# hashing
# ----------------------------------------------------------------------
@requires_numpy
@given(keys=keys_st, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_splitmix64_many_matches(keys, seed):
    py, np_res = _both(kernels.splitmix64_many, keys, seed)
    assert list(py) == [int(v) for v in np_res]


@requires_numpy
@given(keys=keys_st, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_murmur3_64_many_matches(keys, seed):
    py, np_res = _both(kernels.murmur3_64_many, keys, seed)
    assert list(py) == [int(v) for v in np_res]


@requires_numpy
@pytest.mark.parametrize("family", ["splitmix64", "murmur3"])
@given(keys=keys_st)
@settings(max_examples=40, deadline=None)
def test_shared_bases_matches(family, keys):
    py, np_res = _both(kernels.shared_bases, keys, family)
    assert list(py) == [int(v) for v in np_res]


@requires_numpy
@given(keys=bignum_keys_st)
@settings(max_examples=30, deadline=None)
def test_bignum_keys_fall_back_identically(keys):
    """Keys outside uint64 range take the numpy backend's python fallback."""
    py, np_res = _both(kernels.splitmix64_many, keys)
    assert list(py) == list(np_res)


# ----------------------------------------------------------------------
# Bloom filter: bit patterns, membership, accounting
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("family", ["splitmix64", "murmur3"])
@pytest.mark.parametrize("rotation", [0, 17])
@given(keys=keys_st, probes=st.lists(i64 | i64_edges, max_size=40))
@settings(max_examples=25, deadline=None)
def test_bloom_bits_and_membership_identical(family, rotation, keys, probes):
    """Batch adds set byte-identical bits on both backends, and both match
    the sequential single-key path; membership answers agree everywhere."""
    filters = {}
    for backend in ("python", "numpy"):
        with kernels.use_backend(backend):
            bf = BloomFilter(256, hash_family=family, rotation=rotation)
            bf.add_many(keys)
            filters[backend] = bf
    sequential = BloomFilter(256, hash_family=family, rotation=rotation)
    for key in keys:
        sequential.add(key)

    assert bytes(filters["python"]._bits) == bytes(filters["numpy"]._bits)
    assert bytes(filters["python"]._bits) == bytes(sequential._bits)

    py_ans, np_ans = (
        filters[b].may_contain_many(probes) for b in ("python", "numpy")
    )
    single_ans = [sequential.may_contain(p) for p in probes]
    assert list(py_ans) == list(np_ans) == single_ans
    assert all(key in filters["python"] for key in keys)


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
def test_batch_accounting_matches_sequential(backend):
    """`add_many`/`may_contain_many` bill n_added/probe_count exactly like
    the sequential loop, on every backend (regression: accounting parity)."""
    keys = list(range(0, 600, 3))
    probes = list(range(0, 900, 2))
    with kernels.use_backend(backend):
        batch, seq = BloomFilter(512), BloomFilter(512)
        batch.add_many(keys)
        batch.may_contain_many(probes)
        for key in keys:
            seq.add(key)
        for p in probes:
            seq.may_contain(p)
    assert batch.n_added == seq.n_added == len(keys)
    assert batch.probe_count == seq.probe_count == len(probes)


@requires_numpy
@given(data=st.binary(max_size=512))
@settings(max_examples=60, deadline=None)
def test_popcount_bytes_matches(data):
    py, np_res = _both(kernels.popcount_bytes, data)
    assert py == int(np_res) == sum(bin(b).count("1") for b in data)


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
def test_saturation_counts_set_bits(backend):
    with kernels.use_backend(backend):
        bf = BloomFilter(128)
        bf.add_many(list(range(50)))
        expected = sum(bin(b).count("1") for b in bf._bits) / bf.n_bits
        assert bf.saturation == pytest.approx(expected)


# ----------------------------------------------------------------------
# buffer kernels: split detection, stable sort, merge, range search
# ----------------------------------------------------------------------
entry_st = st.tuples(
    st.integers(min_value=0, max_value=40),  # key — small range forces dups
    st.integers(min_value=0, max_value=10**6),  # seq
    st.integers(),  # value
    st.booleans(),  # tombstone
)


@requires_numpy
@given(keys=keys_st, last=st.none() | i64)
@settings(max_examples=60, deadline=None)
def test_nondecreasing_prefix_len_matches(keys, last):
    py, np_res = _both(kernels.nondecreasing_prefix_len, keys, last)
    assert py == np_res


@requires_numpy
@given(entries=st.lists(entry_st, max_size=60))
@settings(max_examples=60, deadline=None)
def test_sort_tail_entries_stable_and_identical(entries):
    """Same (key, seq) order on both backends — stability decides which of
    several versions of a key (including tombstones) wins downstream."""
    py, np_res = _both(kernels.sort_tail_entries, list(entries))
    assert list(py) == list(np_res)
    assert list(py) == sorted(entries, key=lambda e: (e[0], e[1]))


@requires_numpy
@given(
    streams=st.lists(
        st.lists(entry_st, max_size=25).map(
            lambda es: sorted(es, key=lambda e: (e[0], e[1]))
        ),
        max_size=4,
    )
)
@settings(max_examples=60, deadline=None)
def test_merge_entry_streams_matches(streams):
    py, np_res = _both(kernels.merge_entry_streams, [list(s) for s in streams])
    assert list(py) == list(np_res)
    assert list(py) == sorted(
        (e for s in streams for e in s), key=lambda e: (e[0], e[1])
    )


@requires_numpy
@given(keys=st.lists(i64, max_size=60), lo=i64, hi=i64)
@settings(max_examples=60, deadline=None)
def test_searchsorted_range_matches(keys, lo, hi):
    keys = sorted(keys)
    py, np_res = _both(kernels.searchsorted_range, keys, lo, hi)
    assert tuple(py) == tuple(int(v) for v in np_res)


@requires_numpy
@given(pairs=st.lists(st.tuples(st.integers(0, 200), st.integers()), max_size=120))
@settings(max_examples=25, deadline=None)
def test_buffer_state_identical_across_backends(pairs):
    """End to end: add_many + lookups + ranges observe the same buffer."""
    buffers = {}
    for backend in ("python", "numpy"):
        with kernels.use_backend(backend):
            buf = SWAREBuffer(SWAREConfig(buffer_capacity=256, page_size=8))
            buf.add_many(pairs)
            buffers[backend] = buf
    with kernels.use_backend("python"):
        py_gets = [buffers["python"].lookup(k) for k in range(0, 201, 7)]
        py_range = buffers["python"].range_entries(20, 150)
        buffers["python"].check_invariants()
    with kernels.use_backend("numpy"):
        np_gets = [buffers["numpy"].lookup(k) for k in range(0, 201, 7)]
        np_range = buffers["numpy"].range_entries(20, 150)
        buffers["numpy"].check_invariants()
    assert py_gets == np_gets
    assert list(py_range) == list(np_range)
    assert buffers["python"].all_entries() == buffers["numpy"].all_entries()


# ----------------------------------------------------------------------
# sortedness metrics
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize(
    "metric",
    [
        kernels.count_inversions,
        kernels.max_displacement,
        kernels.count_runs,
        kernels.count_out_of_order,
        kernels.longest_nondecreasing_subsequence_length,
    ],
    ids=lambda f: f.__name__,
)
@given(keys=small_keys_st)
@settings(max_examples=50, deadline=None)
def test_metric_values_match(metric, keys):
    py, np_res = _both(metric, keys)
    assert py == np_res


@requires_numpy
@given(keys=st.lists(i64 | i64_edges, max_size=40))
@settings(max_examples=40, deadline=None)
def test_inversions_match_on_extreme_keys(keys):
    py, np_res = _both(kernels.count_inversions, keys)
    assert py == np_res


# ----------------------------------------------------------------------
# B+-tree batch pre-pass
# ----------------------------------------------------------------------
items_st = st.lists(st.tuples(st.integers(0, 50), st.integers()), max_size=60)


@requires_numpy
@given(items=items_st)
@settings(max_examples=60, deadline=None)
def test_sort_items_by_key_stable_and_identical(items):
    py, np_res = _both(kernels.sort_items_by_key, list(items))
    assert list(py) == list(np_res)
    assert [p[0] for p in py] == sorted(p[0] for p in items)


@requires_numpy
@given(items=items_st)
@settings(max_examples=60, deadline=None)
def test_dedup_sorted_items_matches(items):
    batch = sorted(items, key=lambda p: p[0])
    py, np_res = _both(kernels.dedup_sorted_items, list(batch))
    assert list(py) == list(np_res)
    # keep-last semantics: one entry per key, holding the latest value
    expected = list(dict(batch).items())
    assert list(py) == expected


@requires_numpy
@given(items=items_st)
@settings(max_examples=60, deadline=None)
def test_keys_strictly_increasing_matches(items):
    py, np_res = _both(kernels.keys_strictly_increasing, list(items))
    assert bool(py) == bool(np_res)


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def test_use_backend_restores_previous_selection():
    before = kernels.active_backend()
    with kernels.use_backend("python"):
        assert kernels.active_backend() == "python"
    assert kernels.active_backend() == before


def test_unknown_backend_rejected():
    with pytest.raises(ConfigError):
        kernels.set_backend("cython")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "python")
    assert kernels.active_backend() == "python"
    monkeypatch.setenv("REPRO_KERNELS", "fortran")
    with pytest.raises(ConfigError):
        kernels.splitmix64_many([1, 2, 3])


@pytest.mark.skipif(HAS_NUMPY, reason="only meaningful without numpy")
def test_forcing_numpy_without_numpy_raises():
    with pytest.raises(ConfigError):
        kernels.set_backend("numpy")


def test_backend_info_shape():
    info = kernels.backend_info()
    assert info["kernel_backend"] in ("python", "numpy")
    assert ("numpy_version" in info) and (
        (info["numpy_version"] is None) != HAS_NUMPY
    )
