"""Tests for the (K,L)-sortedness metrics."""

from hypothesis import given, settings, strategies as st

from repro.sortedness.metrics import (
    RunningSortednessEstimate,
    count_inversions,
    count_out_of_order,
    count_runs,
    exchange_distance,
    longest_nondecreasing_subsequence_length,
    max_displacement,
    measure_sortedness,
    normalized_inversions,
)


class TestLNDS:
    def test_empty(self):
        assert longest_nondecreasing_subsequence_length([]) == 0

    def test_sorted(self):
        assert longest_nondecreasing_subsequence_length([1, 2, 3]) == 3

    def test_with_duplicates(self):
        # Non-decreasing: duplicates extend the subsequence.
        assert longest_nondecreasing_subsequence_length([1, 1, 1]) == 3

    def test_reverse(self):
        assert longest_nondecreasing_subsequence_length([3, 2, 1]) == 1

    def test_classic(self):
        assert longest_nondecreasing_subsequence_length([3, 1, 2, 5, 4]) == 3


class TestK:
    def test_sorted_is_zero(self):
        assert count_out_of_order(list(range(50))) == 0

    def test_one_swap_displaces_two(self):
        keys = list(range(10))
        keys[2], keys[7] = keys[7], keys[2]
        assert count_out_of_order(keys) == 2

    def test_reverse(self):
        assert count_out_of_order([5, 4, 3, 2, 1]) == 4

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_k_bounds(self, keys):
        k = count_out_of_order(keys)
        assert 0 <= k <= max(0, len(keys) - 1)

    @given(st.lists(st.integers(), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_k_zero_iff_sorted(self, keys):
        is_sorted = all(a <= b for a, b in zip(keys, keys[1:]))
        assert (count_out_of_order(keys) == 0) == is_sorted


class TestL:
    def test_sorted_is_zero(self):
        assert max_displacement(list(range(20))) == 0

    def test_adjacent_swap(self):
        assert max_displacement([2, 1, 3]) == 1

    def test_long_throw(self):
        keys = list(range(10))
        keys[0], keys[9] = keys[9], keys[0]
        assert max_displacement(keys) == 9

    def test_duplicates_stable(self):
        # Stable ordering means equal keys are not "displaced".
        assert max_displacement([5, 5, 5, 5]) == 0


class TestInversions:
    def test_sorted(self):
        assert count_inversions([1, 2, 3]) == 0

    def test_reverse(self):
        assert count_inversions([3, 2, 1]) == 3

    def test_duplicates_not_inverted(self):
        assert count_inversions([2, 2, 2]) == 0

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_matches_quadratic_reference(self, keys):
        reference = sum(
            1
            for i in range(len(keys))
            for j in range(i + 1, len(keys))
            if keys[i] > keys[j]
        )
        assert count_inversions(keys) == reference


class TestReport:
    def test_sorted_report(self):
        report = measure_sortedness(list(range(100)))
        assert report.is_sorted
        assert report.k == report.l == report.inversions == 0
        assert report.degree() == "sorted"

    def test_fractions(self):
        keys = list(range(10))
        keys[0], keys[5] = keys[5], keys[0]
        report = measure_sortedness(keys)
        assert report.k_fraction == 0.2
        assert report.l_fraction == 0.5

    def test_empty_collection(self):
        report = measure_sortedness([])
        assert report.k_fraction == 0.0
        assert report.l_fraction == 0.0

    def test_degrees(self):
        from repro.sortedness.generator import generate_kl_keys, scrambled_keys

        near = measure_sortedness(generate_kl_keys(2000, 0.10, 0.05, seed=1))
        assert near.degree() == "near-sorted"
        scrambled = measure_sortedness(scrambled_keys(2000, seed=1))
        assert scrambled.degree() == "scrambled"


class TestClassicalMeasures:
    def test_runs_sorted(self):
        assert count_runs(list(range(10))) == 1

    def test_runs_reversed(self):
        assert count_runs([3, 2, 1]) == 3

    def test_runs_empty(self):
        assert count_runs([]) == 0

    def test_runs_duplicates_extend(self):
        assert count_runs([1, 1, 2, 0, 0, 5]) == 2

    def test_exchange_sorted_zero(self):
        assert exchange_distance(list(range(10))) == 0

    def test_exchange_single_swap(self):
        keys = list(range(10))
        keys[2], keys[7] = keys[7], keys[2]
        assert exchange_distance(keys) == 1

    def test_exchange_three_cycle(self):
        # (0 1 2) cycle needs two exchanges.
        assert exchange_distance([1, 2, 0]) == 2

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_exchange_bounds(self, keys):
        value = exchange_distance(keys)
        assert 0 <= value <= max(0, len(keys) - 1)

    def test_normalized_inversions_extremes(self):
        assert normalized_inversions(list(range(10))) == 0.0
        assert normalized_inversions(list(range(10, 0, -1))) == 1.0
        assert normalized_inversions([1]) == 0.0


class TestRunningEstimate:
    def test_sorted_stream_estimates_zero(self):
        estimate = RunningSortednessEstimate()
        for key in range(100):
            estimate.observe(key)
        assert estimate.k_estimate == 0
        assert estimate.l_estimate == 0

    def test_out_of_order_detected(self):
        estimate = RunningSortednessEstimate()
        for key in (1, 2, 3, 0):
            estimate.observe(key)
        assert estimate.k_estimate == 1
        assert estimate.l_estimate >= 1

    def test_reset(self):
        estimate = RunningSortednessEstimate()
        estimate.observe(5)
        estimate.observe(1)
        estimate.reset()
        assert estimate.n == 0
        assert estimate.k_estimate == 0

    def test_k_fraction_tracks_stream(self):
        from repro.sortedness.generator import generate_kl_keys

        estimate = RunningSortednessEstimate()
        for key in generate_kl_keys(4000, 0.10, 0.05, seed=2):
            estimate.observe(key)
        # The online estimate should be within a loose band of the truth.
        assert 0.02 < estimate.k_fraction < 0.40
