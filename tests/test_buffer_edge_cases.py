"""Edge-case and failure-mode tests for the SWARE-buffer and wrapper."""


from repro.core.buffer import HIT, TOMBSTONE, SWAREBuffer
from repro.core.config import SWAREConfig
from repro.core.factory import make_sa_btree


class TestTinyGeometries:
    def test_minimum_buffer(self):
        buffer = SWAREBuffer(SWAREConfig(buffer_capacity=2, page_size=1))
        buffer.add(2, "a")
        buffer.add(1, "b")
        assert buffer.is_full
        batch = buffer.prepare_flush()
        assert len(batch.entries) >= 1
        buffer.check_invariants()

    def test_page_size_one(self):
        buffer = SWAREBuffer(SWAREConfig(buffer_capacity=8, page_size=1))
        for key in (5, 3, 7, 1):
            buffer.add(key, key)
        assert buffer.lookup(3) == (HIT, 3)
        buffer.check_invariants()

    def test_index_with_tiny_buffer_correct(self):
        index = make_sa_btree(
            SWAREConfig(buffer_capacity=2, page_size=1),
            leaf_capacity=4,
            internal_capacity=4,
        )
        import random

        rng = random.Random(3)
        model = {}
        for _ in range(500):
            key = rng.randrange(100)
            index.insert(key, key)
            model[key] = key
        for key in range(100):
            assert index.get(key) == model.get(key)


class TestTombstoneOnlyStates:
    def test_buffer_of_only_tombstones(self):
        buffer = SWAREBuffer(SWAREConfig(buffer_capacity=8, page_size=2))
        for key in (3, 1, 2):
            buffer.add(key, None, tombstone=True)
        assert buffer.lookup(3)[0] == TOMBSTONE
        batch = buffer.drain()
        assert all(entry[3] for entry in batch.entries)

    def test_index_delete_only_workload(self):
        index = make_sa_btree(SWAREConfig(buffer_capacity=8, page_size=2))
        for key in range(20):
            index.insert(key, key)
        index.flush_all()
        for key in range(20):
            index.delete(key)
        index.flush_all()
        assert index.range_query(0, 20) == []
        index.backend.check_invariants()

    def test_tombstone_then_range(self):
        index = make_sa_btree(SWAREConfig(buffer_capacity=16, page_size=4))
        for key in range(10):
            index.insert(key, key)
        index.delete(5)
        result = [k for k, _ in index.range_query(0, 9)]
        assert result == [0, 1, 2, 3, 4, 6, 7, 8, 9]


class TestMonotoneEdgeCases:
    def test_descending_inserts(self):
        """Worst case for SWARE: strictly descending arrival."""
        index = make_sa_btree(SWAREConfig(buffer_capacity=16, page_size=4))
        for key in range(200, 0, -1):
            index.insert(key, key)
        for key in range(1, 201):
            assert index.get(key) == key
        index.backend.check_invariants()

    def test_constant_key_stream(self):
        index = make_sa_btree(SWAREConfig(buffer_capacity=16, page_size=4))
        for step in range(100):
            index.insert(7, step)
        assert index.get(7) == 99
        index.flush_all()
        assert index.get(7) == 99
        assert len(index.backend) == 1

    def test_sawtooth_stream(self):
        index = make_sa_btree(SWAREConfig(buffer_capacity=16, page_size=4))
        model = {}
        for cycle in range(10):
            for key in range(0, 50, 5):
                index.insert(key + cycle, cycle)
                model[key + cycle] = cycle
        for key, value in model.items():
            assert index.get(key) == value


class TestNegativeAndExtremeKeys:
    def test_negative_keys(self):
        index = make_sa_btree(SWAREConfig(buffer_capacity=16, page_size=4))
        for key in (-5, -100, 0, 3, -7):
            index.insert(key, key)
        assert index.get(-100) == -100
        assert index.range_query(-1000, 0) == [(-100, -100), (-7, -7), (-5, -5), (0, 0)]

    def test_huge_keys(self):
        index = make_sa_btree(SWAREConfig(buffer_capacity=16, page_size=4))
        keys = [2**60, 2**61, 2**60 + 5]
        for key in keys:
            index.insert(key, "big")
        for key in keys:
            assert index.get(key) == "big"

    def test_sparse_domain_interpolation(self):
        """Extremely skewed key gaps must not break interpolation search."""
        index = make_sa_btree(SWAREConfig(buffer_capacity=64, page_size=8))
        keys = [2**i for i in range(50)]
        for key in keys:
            index.insert(key, key)
        for key in keys:
            assert index.get(key) == key
        assert index.get(3) is None


class TestStatsConsistency:
    def test_every_entry_routed_exactly_once(self):
        import random

        index = make_sa_btree(SWAREConfig(buffer_capacity=32, page_size=8))
        rng = random.Random(5)
        keys = list(range(1000))
        rng.shuffle(keys)
        for key in keys:
            index.insert(key, key)
        index.flush_all()
        stats = index.stats
        assert (
            stats.bulk_loaded_entries
            + stats.top_inserted_entries
            + stats.tombstones_dropped
            == 1000
        )

    def test_flush_counts(self):
        index = make_sa_btree(SWAREConfig(buffer_capacity=16, page_size=4))
        for key in range(64):
            index.insert(key, key)
        assert index.stats.flushes == (
            index.stats.flushes_with_sort + index.stats.flushes_without_sort
        )
        assert index.stats.flushes >= 3
