"""Tests for the BoDS-style workload generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sortedness.generator import (
    NAMED_DEGREES,
    generate_kl_keys,
    generate_workload,
    scrambled_keys,
    sorted_keys,
    workload_family,
)
from repro.sortedness.metrics import measure_sortedness


class TestSortedBase:
    def test_basic(self):
        assert sorted_keys(5) == [0, 1, 2, 3, 4]

    def test_start_and_gap(self):
        assert sorted_keys(3, start=10, gap=5) == [10, 15, 20]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            sorted_keys(-1)
        with pytest.raises(ValueError):
            sorted_keys(5, gap=0)


class TestKLGeneration:
    def test_zero_k_is_sorted(self):
        assert generate_kl_keys(100, 0.0, 0.5) == list(range(100))

    def test_zero_l_is_sorted(self):
        assert generate_kl_keys(100, 0.5, 0.0) == list(range(100))

    def test_permutation_of_base(self):
        keys = generate_kl_keys(500, 0.2, 0.1, seed=3)
        assert sorted(keys) == list(range(500))

    def test_deterministic_by_seed(self):
        assert generate_kl_keys(300, 0.3, 0.2, seed=9) == generate_kl_keys(
            300, 0.3, 0.2, seed=9
        )

    def test_different_seeds_differ(self):
        assert generate_kl_keys(300, 0.3, 0.2, seed=1) != generate_kl_keys(
            300, 0.3, 0.2, seed=2
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            generate_kl_keys(10, 1.5, 0.1)
        with pytest.raises(ValueError):
            generate_kl_keys(10, 0.1, -0.1)

    @pytest.mark.parametrize(
        "k_target,l_target",
        [(0.02, 0.01), (0.10, 0.05), (0.20, 0.10), (0.50, 0.25)],
    )
    def test_achieved_sortedness_near_target(self, k_target, l_target):
        n = 4000
        report = measure_sortedness(generate_kl_keys(n, k_target, l_target, seed=11))
        assert abs(report.k_fraction - k_target) < max(0.05, 0.3 * k_target)
        # L: the anchor swap pins the max displacement at the target.
        assert abs(report.l_fraction - l_target) < 0.02

    def test_l_never_exceeds_target(self):
        n = 3000
        for l_target in (0.01, 0.10, 0.30):
            report = measure_sortedness(generate_kl_keys(n, 0.2, l_target, seed=5))
            assert report.l_fraction <= l_target + 1.5 / n

    @given(
        st.integers(min_value=2, max_value=400),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_a_permutation(self, n, k, l, seed):
        keys = generate_kl_keys(n, k, l, seed=seed)
        assert sorted(keys) == list(range(n))


class TestScrambled:
    def test_is_permutation(self):
        assert sorted(scrambled_keys(200, seed=4)) == list(range(200))

    def test_is_actually_scrambled(self):
        report = measure_sortedness(scrambled_keys(2000, seed=4))
        assert report.k_fraction > 0.7
        assert report.l_fraction > 0.5


class TestNamedWorkloads:
    def test_all_names_work(self):
        for name in NAMED_DEGREES:
            workload = generate_workload(500, degree=name, seed=2)
            assert workload.n == 500
            assert workload.label == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            generate_workload(10, degree="mostly-ok")

    def test_family_same_key_set(self):
        family = workload_family(300, [(0.0, 0.0), (0.1, 0.1), (0.5, 0.2)])
        base = sorted(family[0].keys)
        assert all(sorted(w.keys) == base for w in family)
        assert len({w.seed for w in family}) == len(family)
