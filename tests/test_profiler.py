"""Tests for the sampling profiler (repro.obs.profiler)."""

import threading
import time

import pytest

from repro.obs import NULL_OBS, Observability
from repro.obs.profiler import (
    OTHER_LAYER,
    SamplingProfiler,
    layer_for_module,
    measure_overhead,
)


def _spin_in_module(module_name):
    """A busy-loop function whose frame claims to live in ``module_name``."""
    source = (
        "def spin(started, stop):\n"
        "    started.set()\n"
        "    while not stop.is_set():\n"
        "        pass\n"
    )
    namespace = {"__name__": module_name}
    exec(compile(source, "<fake>", "exec"), namespace)
    return namespace["spin"]


class TestLayerAttribution:
    def test_layer_for_module_mapping(self):
        assert layer_for_module("repro.core.buffer") == "buffer"
        assert layer_for_module("repro.core.sware") == "sware"
        assert layer_for_module("repro.btree.btree") == "btree"
        assert layer_for_module("repro.storage.wal") == "wal"
        assert layer_for_module("repro.kernels.numpy_backend") == "kernels"
        assert layer_for_module("repro.filters.bloom") == "bloom"
        # First match wins: specific entries beat the package fallback.
        assert layer_for_module("repro.core.unknown") == "repro-other"
        assert layer_for_module("os.path") is None

    def test_sample_attributes_foreign_thread_to_layer(self):
        profiler = SamplingProfiler(hz=100)
        started, stop = threading.Event(), threading.Event()
        worker = threading.Thread(
            target=_spin_in_module("repro.core.buffer"), args=(started, stop)
        )
        worker.start()
        try:
            assert started.wait(5.0)
            seen = profiler.sample_once()
            assert seen >= 1
        finally:
            stop.set()
            worker.join()
        assert profiler.layer_samples["buffer"] >= 1

    def test_non_repro_stack_lands_in_other(self):
        profiler = SamplingProfiler()
        started, stop = threading.Event(), threading.Event()
        worker = threading.Thread(
            target=_spin_in_module("somelib.inner"), args=(started, stop)
        )
        worker.start()
        try:
            assert started.wait(5.0)
            profiler.sample_once()
        finally:
            stop.set()
            worker.join()
        assert profiler.layer_samples[OTHER_LAYER] >= 1


class TestLifecycle:
    def test_background_sampling_sees_the_calling_thread(self):
        # The profiler must sample the workload thread (the one that called
        # start()), excluding only its own sampling thread.
        profiler = SamplingProfiler(hz=500)
        with profiler:
            deadline = time.perf_counter() + 5.0
            while profiler.samples == 0 and time.perf_counter() < deadline:
                sum(range(1000))
        assert profiler.samples > 0
        assert not profiler.running
        assert profiler.duration_s > 0

    def test_start_is_idempotent_and_stop_without_start_is_safe(self):
        profiler = SamplingProfiler()
        assert profiler.stop() is profiler
        profiler.start()
        assert profiler.start() is profiler
        profiler.stop()

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


class TestOutputs:
    def _sampled(self):
        profiler = SamplingProfiler()
        started, stop = threading.Event(), threading.Event()
        worker = threading.Thread(
            target=_spin_in_module("repro.core.buffer"), args=(started, stop)
        )
        worker.start()
        try:
            started.wait(5.0)
            for _ in range(3):
                profiler.sample_once()
        finally:
            stop.set()
            worker.join()
        return profiler

    def test_collapsed_stack_format(self):
        collapsed = self._sampled().collapsed()
        line = collapsed.splitlines()[0]
        frames, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in frames or frames  # outermost-first frame chain

    def test_layer_table_fractions_sum_to_one(self):
        table = self._sampled().layer_table()
        assert table
        assert sum(row["fraction"] for row in table.values()) == pytest.approx(1.0)
        for row in table.values():
            assert row["est_wall_ns"] > 0

    def test_format_table(self):
        text = self._sampled().format_table()
        assert "layer" in text and "share" in text
        assert SamplingProfiler().format_table() == "(no profile samples collected)\n"

    def test_snapshot_shape_matches_artifact_schema(self):
        from repro.bench.telemetry import validate_bench_artifact

        snap = self._sampled().snapshot()
        assert {"hz", "samples", "ticks", "duration_s", "layers", "collapsed"} <= set(
            snap
        )
        # Splice into a minimal valid artifact: the validator must accept it.
        obs = Observability()
        obs.record_run({"phases": [{"name": "p", "n_ops": 1, "sim_ns": 1,
                                    "wall_ns": 1}],
                        "bucket_sim_ns": {}, "counts": {}})
        from repro.bench.telemetry import build_bench_artifact

        doc = build_bench_artifact("unit", obs)
        doc["profile"] = snap
        assert validate_bench_artifact(doc) == []

    def test_validator_flags_bad_profile_section(self):
        from repro.bench.telemetry import build_bench_artifact, validate_bench_artifact

        obs = Observability()
        obs.record_run({"phases": [{"name": "p", "n_ops": 1, "sim_ns": 1,
                                    "wall_ns": 1}],
                        "bucket_sim_ns": {}, "counts": {}})
        doc = build_bench_artifact("unit", obs)
        doc["profile"] = {"hz": "fast", "layers": {"buffer": {}}, "collapsed": {}}
        errors = validate_bench_artifact(doc)
        assert any("hz" in e for e in errors)
        assert any("layers" in e for e in errors)
        assert any("collapsed" in e for e in errors)


class TestCostDiscipline:
    def test_profiler_is_opt_in(self):
        assert Observability().profiler is None
        assert NULL_OBS.profiler is None

    def test_measure_overhead_reports_ratio(self):
        report = measure_overhead(lambda: sum(range(20_000)), hz=67, repeats=2)
        assert set(report) == {"bare_s", "profiled_s", "ratio"}
        assert report["bare_s"] > 0
        assert report["ratio"] > 0
