"""Property-based tests: the Bε-tree against a dict model."""

import random

from hypothesis import given, settings, strategies as st

from repro.betree.betree import BeTree, BeTreeConfig

CONFIGS = [
    BeTreeConfig(node_size=16, leaf_capacity=8),
    BeTreeConfig(node_size=16, leaf_capacity=8, split_factor=0.8),
    BeTreeConfig(node_size=32, leaf_capacity=6, epsilon=0.5),
    BeTreeConfig(node_size=16, leaf_capacity=8, epsilon=0.75),
]


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get", "range"]),
            st.integers(min_value=0, max_value=150),
        ),
        max_size=250,
    ),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
)
@settings(max_examples=100, deadline=None)
def test_random_ops_match_dict_model(ops, config_index):
    tree = BeTree(CONFIGS[config_index])
    model = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key + 1000)
            model[key] = key + 1000
        elif op == "delete":
            tree.delete(key)
            model.pop(key, None)
        elif op == "get":
            assert tree.get(key) == model.get(key)
        else:
            lo, hi = key, key + 20
            expected = sorted((k, v) for k, v in model.items() if lo <= k <= hi)
            assert tree.range_query(lo, hi) == expected
    tree.check_invariants()
    assert dict(tree.iter_items()) == model


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_recency_of_overwrites(seed):
    """Multiple writes to the same keys: the latest always wins, whether it
    is pending in a buffer or applied to a leaf."""
    rng = random.Random(seed)
    tree = BeTree(BeTreeConfig(node_size=16, leaf_capacity=8))
    model = {}
    for version in range(4):
        keys = list(range(60))
        rng.shuffle(keys)
        for key in keys[: rng.randint(10, 60)]:
            tree.insert(key, (version, key))
            model[key] = (version, key)
    for key in range(60):
        assert tree.get(key) == model.get(key)


@given(
    n_sorted=st.integers(min_value=0, max_value=200),
    n_bulk=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=50, deadline=None)
def test_bulk_after_sorted_inserts(n_sorted, n_bulk):
    tree = BeTree(BeTreeConfig(node_size=16, leaf_capacity=8))
    for key in range(n_sorted):
        tree.insert(key, key)
    tree.bulk_load_append([(n_sorted + i, -i) for i in range(n_bulk)])
    tree.check_invariants()
    assert list(tree.iter_items()) == [(k, k) for k in range(n_sorted)] + [
        (n_sorted + i, -i) for i in range(n_bulk)
    ]
