"""Tests for the file-backed page store and checkpointing."""

import os
import random

import pytest

from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.storage.pagefile import CheckpointStore, PageFile, PageFileError


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "pages.db")


class TestPageFile:
    def test_write_read_roundtrip(self, path):
        with PageFile(path, slot_size=128) as pf:
            pf.write_page(1, b"hello")
            pf.write_page(2, b"world" * 10)
            assert pf.read_page(1) == b"hello"
            assert pf.read_page(2) == b"world" * 10

    def test_large_payload_spills_slots(self, path):
        payload = os.urandom(1000)
        with PageFile(path, slot_size=128) as pf:
            pf.write_page(7, payload)
            assert pf.read_page(7) == payload
            assert pf.n_slots >= 8

    def test_overwrite_reuses_slots(self, path):
        with PageFile(path, slot_size=128) as pf:
            pf.write_page(1, b"a" * 500)
            slots_before = pf.n_slots
            pf.write_page(1, b"b" * 500)
            assert pf.read_page(1) == b"b" * 500
            assert pf.n_slots == slots_before  # freed slots reused

    def test_free_page(self, path):
        with PageFile(path, slot_size=128) as pf:
            pf.write_page(1, b"x")
            pf.free_page(1)
            with pytest.raises(PageFileError):
                pf.read_page(1)

    def test_unknown_page(self, path):
        with PageFile(path, slot_size=128) as pf:
            with pytest.raises(PageFileError):
                pf.read_page(99)

    def test_empty_payload(self, path):
        with PageFile(path, slot_size=128) as pf:
            pf.write_page(0, b"")
            assert pf.read_page(0) == b""

    def test_page_ids(self, path):
        with PageFile(path, slot_size=128) as pf:
            pf.write_page(3, b"x")
            pf.write_page(1, b"y")
            assert pf.page_ids() == [1, 3]

    def test_rejects_tiny_slots(self, path):
        with pytest.raises(ValueError):
            PageFile(path, slot_size=16)

    def test_reopen_resumes_slot_allocation(self, path):
        """Regression: reopening an existing file must not leave
        ``_n_slots == 0`` — the next write would silently overwrite slot 0."""
        with PageFile(path, slot_size=128) as pf:
            pf.write_page(1, b"original" * 10)
            slots_before = pf.n_slots
        with PageFile(path, slot_size=128) as pf:
            assert pf.n_slots == slots_before  # allocation resumes after disk
            pf.write_page(2, b"appended")
            assert pf.read_page(2) == b"appended"
            # Slot 0's bytes are untouched by the append.
            assert pf._read_slot(0)[4:14] == b"original" + b"or"

    def test_truncate_resets(self, path):
        with PageFile(path, slot_size=128) as pf:
            pf.write_page(1, b"x" * 300)
            pf.truncate()
            assert pf.n_slots == 0
            assert pf.page_ids() == []
            pf.write_page(2, b"fresh")
            assert pf.read_page(2) == b"fresh"


class TestCheckpointStore:
    def _tree(self, n=400, seed=5):
        tree = BPlusTree(BPlusTreeConfig(leaf_capacity=8, internal_capacity=8))
        keys = list(range(n))
        random.Random(seed).shuffle(keys)
        for key in keys:
            tree.insert(key, f"value-{key}")
        return tree

    def test_save_and_load(self, path):
        tree = self._tree()
        store = CheckpointStore(path)
        n_pages = store.save_btree(tree)
        assert n_pages > 10
        restored = store.load_btree()
        assert list(restored.iter_items()) == list(tree.iter_items())
        restored.check_invariants()

    def test_restored_tree_accepts_writes(self, path):
        store = CheckpointStore(path)
        store.save_btree(self._tree(n=100))
        restored = store.load_btree()
        restored.insert(10_000, "fresh")
        restored.bulk_load_append([(20_000 + i, i) for i in range(30)])
        restored.check_invariants()
        assert restored.get(10_000) == "fresh"

    def test_empty_tree_checkpoint(self, path):
        store = CheckpointStore(path)
        store.save_btree(BPlusTree())
        restored = store.load_btree()
        assert restored.get(1) is None

    def test_checkpoint_survives_process_boundary(self, path):
        """Simulate a restart: separate store objects, same file."""
        CheckpointStore(path).save_btree(self._tree(n=150, seed=9))
        restored = CheckpointStore(path).load_btree()
        assert restored.get(37) == "value-37"

    def test_missing_file_fails_cleanly(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "nope.db"))
        with pytest.raises((PageFileError, FileNotFoundError, OSError)):
            store.load_btree()

    def test_garbage_file_fails_cleanly(self, path):
        with open(path, "wb") as handle:
            handle.write(os.urandom(4096 * 3))
        with pytest.raises(PageFileError):
            CheckpointStore(path).load_btree()

    def test_sware_index_checkpoint_roundtrip(self, path):
        from repro.core.config import SWAREConfig
        from repro.core.factory import make_sa_btree
        from repro.sortedness.generator import generate_kl_keys

        index = make_sa_btree(SWAREConfig(buffer_capacity=64, page_size=8))
        keys = generate_kl_keys(1500, 0.10, 0.05, seed=6)
        for key in keys:
            index.insert(key, key * 2)
        index.delete(keys[10])
        store = CheckpointStore(path)
        store.save_index(index)
        restored = store.load_index(SWAREConfig(buffer_capacity=64, page_size=8))
        assert restored.get(keys[0]) == keys[0] * 2
        assert restored.get(keys[10]) is None
        # The restored index keeps working as a sortedness-aware index.
        top = max(keys)
        for key in range(top + 1, top + 200):
            restored.insert(key, key)
        restored.flush_all()
        assert restored.stats.bulk_loaded_entries > 0
        restored.backend.check_invariants()

    def test_overwriting_checkpoint(self, path):
        store = CheckpointStore(path)
        store.save_btree(self._tree(n=100, seed=1))
        second = self._tree(n=60, seed=2)
        store2 = CheckpointStore(path + ".2")
        store2.save_btree(second)
        restored = store2.load_btree()
        assert list(restored.iter_items()) == list(second.iter_items())

    def test_smaller_second_checkpoint_wins(self, path):
        """Regression: re-saving a *smaller* tree to the same path must not
        resurrect the previous (larger) checkpoint's directory or serve a
        mix of old directory and new slots."""
        store = CheckpointStore(path, slot_size=128)
        large = self._tree(n=400, seed=1)
        store.save_btree(large)
        small = self._tree(n=25, seed=2)
        store.save_btree(small)
        restored = store.load_btree()
        assert list(restored.iter_items()) == list(small.iter_items())
        # And a fresh store (process restart) agrees.
        again = CheckpointStore(path, slot_size=128).load_btree()
        assert list(again.iter_items()) == list(small.iter_items())

    def test_epoch_monotonic_across_stores(self, path):
        store = CheckpointStore(path, slot_size=128)
        store.save_btree(self._tree(n=30, seed=1))
        store.save_btree(self._tree(n=30, seed=2))
        assert store.last_epoch == 2
        # A new handle resumes after the committed epoch.
        store2 = CheckpointStore(path, slot_size=128)
        store2.save_btree(self._tree(n=30, seed=3))
        assert store2.last_epoch == 3
        CheckpointStore(path, slot_size=128).load_btree()

    def test_corrupt_footer_fails_cleanly(self, path):
        store = CheckpointStore(path, slot_size=128)
        store.save_btree(self._tree(n=50, seed=4))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 10)  # inside the footer
            handle.write(b"\xff\xff")
        with pytest.raises(PageFileError):
            CheckpointStore(path, slot_size=128).load_btree()

    def test_corrupt_directory_fails_cleanly(self, path):
        store = CheckpointStore(path, slot_size=128)
        store.save_btree(self._tree(n=50, seed=4))
        n_slots = os.path.getsize(path) // 128
        with open(path, "r+b") as handle:
            handle.seek((n_slots - 1) * 128 + 40)  # inside the directory pickle
            handle.write(b"\x00\x00\x00")
        with pytest.raises(PageFileError):
            CheckpointStore(path, slot_size=128).load_btree()

    def test_truncated_file_fails_cleanly(self, path):
        store = CheckpointStore(path, slot_size=128)
        store.save_btree(self._tree(n=50, seed=4))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(PageFileError):
            CheckpointStore(path, slot_size=128).load_btree()

    def test_save_is_atomic_no_tmp_left_behind(self, path):
        store = CheckpointStore(path, slot_size=128)
        store.save_btree(self._tree(n=50, seed=4))
        assert not os.path.exists(store.tmp_path)
