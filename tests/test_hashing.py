"""Tests for repro.filters.hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.filters.hashing import (
    SharedHash,
    murmur3_32,
    murmur3_64,
    rotate64,
    splitmix64,
)


class TestMurmur3ReferenceVectors:
    """Known-answer tests against the reference murmur3 x86-32."""

    @pytest.mark.parametrize(
        "data,seed,expected",
        [
            (b"", 0, 0x00000000),
            (b"", 1, 0x514E28B7),
            (b"", 0xFFFFFFFF, 0x81F16F39),
            (b"hello", 0, 0x248BFA47),
            (b"hello, world", 0, 0x149BBB7F),
            (b"The quick brown fox jumps over the lazy dog", 0x9747B28C, 0x2FA826CD),
            (b"\xff\xff\xff\xff", 0, 0x76293B50),
            (b"\x21\x43\x65\x87", 0, 0xF55B516B),
            (b"\x21\x43\x65\x87", 0x5082EDEE, 0x2362F9DE),
            (b"\x21\x43\x65", 0, 0x7E4A8634),
            (b"\x21\x43", 0, 0xA0F7B07A),
            (b"\x21", 0, 0x72661CF4),
        ],
    )
    def test_reference_vector(self, data, seed, expected):
        assert murmur3_32(data, seed) == expected


class TestMurmur64AndSplitmix:
    def test_murmur3_64_is_deterministic(self):
        assert murmur3_64(42) == murmur3_64(42)

    def test_murmur3_64_seed_changes_output(self):
        assert murmur3_64(42, seed=1) != murmur3_64(42, seed=2)

    def test_splitmix_is_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    @given(st.integers(min_value=0, max_value=2**63))
    def test_splitmix_fits_64_bits(self, key):
        assert 0 <= splitmix64(key) < 2**64

    @given(st.integers(min_value=0, max_value=2**63))
    def test_murmur64_fits_64_bits(self, key):
        assert 0 <= murmur3_64(key) < 2**64

    def test_splitmix_avalanche(self):
        # Neighbouring keys should differ in roughly half the bits.
        diff = bin(splitmix64(1000) ^ splitmix64(1001)).count("1")
        assert 16 <= diff <= 48


class TestRotate64:
    def test_zero_rotation_is_identity(self):
        assert rotate64(0x123456789ABCDEF0, 0) == 0x123456789ABCDEF0

    def test_full_rotation_is_identity(self):
        assert rotate64(0x123456789ABCDEF0, 64) == 0x123456789ABCDEF0

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(0, 63))
    def test_rotation_is_invertible(self, value, bits):
        assert rotate64(rotate64(value, bits), 64 - bits) == value

    def test_rotation_moves_bits(self):
        assert rotate64(1, 1) == 2
        assert rotate64(1 << 63, 1) == 1


class TestSharedHash:
    def test_probe_count_and_range(self):
        shared = SharedHash(12345)
        probes = shared.probes(7, 1024)
        assert len(probes) == 7
        assert all(0 <= p < 1024 for p in probes)

    def test_probes_deterministic_per_key(self):
        assert SharedHash(9).probes(5, 100) == SharedHash(9).probes(5, 100)

    def test_different_keys_differ(self):
        assert SharedHash(1).probes(5, 10_000) != SharedHash(2).probes(5, 10_000)

    def test_rotated_stream_differs(self):
        shared = SharedHash(777)
        assert shared.probes(5, 10_000) != shared.rotated(17).probes(5, 10_000)

    def test_rotated_is_deterministic(self):
        a = SharedHash(777).rotated(17).probes(5, 512)
        b = SharedHash(777).rotated(17).probes(5, 512)
        assert a == b

    def test_murmur_family(self):
        shared = SharedHash(123, family="murmur3")
        assert len(shared.probes(3, 64)) == 3

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            SharedHash(1, family="fnv")

    def test_h2_is_odd(self):
        # Odd step guarantees all slots reachable for power-of-two sizes.
        for key in range(50):
            assert SharedHash(key).h2 % 2 == 1
