"""Tests for the streaming monitors and threshold health rules (obs v2)."""

import pytest

from repro.obs import Observability
from repro.obs.monitors import (
    BF_FPR_FLOOR,
    BULK_FRACTION_FLOOR,
    DEFAULT_WINDOW,
    FSYNC_P99_NS,
    LOCK_WAIT_RATIO,
    MIN_BF_DECISIONS,
    MIN_FLUSHES,
    MIN_LOCK_ACQUIRES,
    MIN_WINDOWS,
    SORTEDNESS_COLLAPSE_DELTA,
    BloomMonitor,
    HealthFinding,
    MonitorHub,
    SaturationMonitor,
    SortednessDriftMonitor,
    build_signals,
    evaluate_signals,
)


class FakeBuffer:
    def __init__(self, size, capacity):
        self._size = size
        self.capacity = capacity

    def __len__(self):
        return self._size


class TestSortednessDriftMonitor:
    def test_windows_close_at_window_size(self):
        monitor = SortednessDriftMonitor(window=8)
        monitor.observe_keys(range(20))
        assert len(monitor.windows) == 2
        assert monitor.keys_observed == 20
        # Fully sorted input: no out-of-order keys in any window.
        for window in monitor.windows:
            assert window["n"] == 8.0
            assert window["k_fraction"] == 0.0

    def test_drift_visible_between_windows(self):
        monitor = SortednessDriftMonitor(window=16)
        monitor.observe_keys(range(16))  # sorted window
        monitor.observe_keys([100, 5, 90, 3, 80, 1, 70, 2,
                              60, 4, 50, 6, 40, 7, 30, 8])  # scrambled window
        assert len(monitor.windows) == 2
        assert monitor.windows[1]["k_fraction"] > monitor.windows[0]["k_fraction"]

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            SortednessDriftMonitor(window=1)

    def test_snapshot_shape(self):
        monitor = SortednessDriftMonitor(window=4)
        monitor.observe_keys(range(9))
        snap = monitor.snapshot()
        assert snap["window"] == 4
        assert snap["keys_observed"] == 9
        assert len(snap["windows"]) == 2
        assert {"n", "k_fraction", "l_fraction"} <= set(snap["windows"][0])


class TestSaturationMonitor:
    def test_flush_accounting(self):
        monitor = SaturationMonitor()
        monitor.observe_flush(entries=100, retained=10, effortless=True)
        monitor.observe_flush(entries=50, retained=0, effortless=False)
        snap = monitor.snapshot()
        assert snap["flushes"] == 2
        assert snap["sorted_flushes"] == 1
        assert snap["flush_entries"] == 150
        assert snap["retained_entries"] == 10

    def test_fill_trajectory_and_mean(self):
        monitor = SaturationMonitor()
        for fill in (0.25, 0.5, 0.75):
            monitor.observe_fill(fill)
        snap = monitor.snapshot()
        assert snap["fill_trajectory"] == [0.25, 0.5, 0.75]
        assert snap["mean_fill"] == pytest.approx(0.5)

    def test_trajectory_is_bounded(self):
        monitor = SaturationMonitor(trajectory_capacity=4)
        for i in range(10):
            monitor.observe_fill(i / 10)
        assert len(monitor.snapshot()["fill_trajectory"]) == 4


class TestBloomMonitor:
    def test_mean_expected_fpr(self):
        monitor = BloomMonitor()
        assert monitor.mean_expected_fpr == 0.0
        monitor.observe_expected_fpr(0.01)
        monitor.observe_expected_fpr(0.03)
        assert monitor.mean_expected_fpr == pytest.approx(0.02)
        assert monitor.snapshot()["expected_fpr_samples"] == [0.01, 0.03]


class TestMonitorHub:
    def test_observe_insert_feeds_drift_and_fill(self):
        hub = MonitorHub(window=64)
        buffer = FakeBuffer(size=32, capacity=64)
        for key in range(128):
            hub.observe_insert(key, buffer)
        snap = hub.snapshot()
        assert len(snap["sortedness"]["windows"]) == 2
        assert snap["saturation"]["fill_trajectory"]  # sampled periodically
        assert snap["saturation"]["mean_fill"] == pytest.approx(0.5)

    def test_observe_inserts_batch(self):
        hub = MonitorHub(window=32)
        hub.observe_inserts(list(range(64)), FakeBuffer(16, 64))
        snap = hub.snapshot()
        assert snap["sortedness"]["keys_observed"] == 64
        assert snap["saturation"]["fill_trajectory"] == [0.25]

    def test_observe_flush_and_fsync(self):
        hub = MonitorHub()
        hub.observe_flush(entries=10, retained=2, effortless=False, expected_fpr=0.01)
        hub.observe_fsync(5_000.0)
        snap = hub.snapshot()
        assert snap["saturation"]["flushes"] == 1
        assert snap["bloom"]["mean_expected_fpr"] == pytest.approx(0.01)
        assert snap["fsync"] == {"count": 1, "total_ns": 5_000.0}

    def test_locks_section_only_when_attached(self):
        hub = MonitorHub()
        assert "locks" not in hub.snapshot()

        class FakeLocks:
            def snapshot(self):
                return {"acquires": 10, "waits": 2, "timeouts": 0}

        hub.attach_locks(FakeLocks())
        assert hub.snapshot()["locks"]["acquires"] == 10

    def test_observability_opt_in(self):
        assert Observability().monitors is None
        assert isinstance(Observability(monitors=True).monitors, MonitorHub)


def _windows(k_fractions, n=DEFAULT_WINDOW):
    return [
        {"n": float(n), "k_fraction": k, "l_fraction": k / 2}
        for k in k_fractions
    ]


class TestBuildSignals:
    def test_from_artifact_shaped_sections(self):
        metrics = {
            "gauges": {
                "sware_flushes": 12.0,
                "sware_flushes_with_sort": 10.0,
                "sware_bulk_loaded_entries": 300.0,
                "sware_top_inserted_entries": 100.0,
                "sware_inserts": 400.0,
                "sware_global_bf_false_positives": 5.0,
                "sware_global_bf_negatives": 95.0,
            },
            "histograms": {
                "wal_fsync_ns": {"count": 30, "p99": 2_000_000.0},
            },
        }
        monitors = {
            "sortedness": {"windows": _windows([0.1, 0.1, 0.5, 0.5])},
            "saturation": {"mean_fill": 0.8},
            "bloom": {"mean_expected_fpr": 0.004},
            "locks": {"acquires": 50, "waits": 5, "timeouts": 0},
        }
        trace = {"recorded": 100, "dropped": 7, "truncated": True}
        signals = build_signals(metrics, monitors, trace)
        assert len(signals["windows"]) == 4
        assert signals["flushes"] == 12.0
        assert signals["bulk_loaded_entries"] == 300.0
        assert signals["bf_false_positives"] == 5.0
        assert signals["expected_fpr_mean"] == pytest.approx(0.004)
        assert signals["lock_acquires"] == 50.0
        assert signals["fsync_count"] == 30.0
        assert signals["fsync_p99_ns"] == 2_000_000.0
        assert signals["trace_dropped"] == 7.0
        assert signals["mean_fill"] == 0.8

    def test_all_sections_optional(self):
        signals = build_signals(None, None, None)
        assert signals["windows"] == []
        assert signals["flushes"] == 0.0
        assert evaluate_signals(signals) == []

    def test_lock_gauges_fall_back_when_no_monitor_section(self):
        metrics = {"gauges": {"locks_acquires": 8.0, "locks_waits": 1.0}}
        signals = build_signals(metrics)
        assert signals["lock_acquires"] == 8.0
        assert signals["lock_waits"] == 1.0


class TestRules:
    def test_sortedness_collapse_fires(self):
        signals = build_signals(
            None, {"sortedness": {"windows": _windows([0.1, 0.1, 0.6, 0.6])}}
        )
        (finding,) = evaluate_signals(signals)
        assert finding.code == "sortedness_collapse"
        assert finding.severity == "critical"
        assert finding.value == pytest.approx(0.5)
        assert finding.threshold == SORTEDNESS_COLLAPSE_DELTA
        assert "advisor" in finding.remediation

    def test_sortedness_stable_does_not_fire(self):
        signals = build_signals(
            None, {"sortedness": {"windows": _windows([0.1, 0.12, 0.11, 0.1])}}
        )
        assert evaluate_signals(signals) == []

    def test_sortedness_needs_min_windows(self):
        signals = build_signals(
            None,
            {"sortedness": {"windows": _windows([0.0] + [0.9] * (MIN_WINDOWS - 2))}},
        )
        assert evaluate_signals(signals) == []

    def _flush_signals(self, bulk, top, flushes=MIN_FLUSHES):
        return build_signals(
            {
                "gauges": {
                    "sware_flushes": float(flushes),
                    "sware_bulk_loaded_entries": float(bulk),
                    "sware_top_inserted_entries": float(top),
                }
            }
        )

    def test_buffer_undersized_fires(self):
        (finding,) = evaluate_signals(self._flush_signals(bulk=30, top=70))
        assert finding.code == "buffer_undersized"
        assert finding.severity == "warning"
        assert finding.value == pytest.approx(0.3)
        assert finding.threshold == BULK_FRACTION_FLOOR

    def test_buffer_healthy_does_not_fire(self):
        assert evaluate_signals(self._flush_signals(bulk=90, top=10)) == []

    def test_buffer_rule_needs_min_flushes(self):
        signals = self._flush_signals(bulk=0, top=100, flushes=MIN_FLUSHES - 1)
        assert evaluate_signals(signals) == []

    def _bloom_signals(self, fps, negatives, expected):
        return build_signals(
            {
                "gauges": {
                    "sware_global_bf_false_positives": float(fps),
                    "sware_global_bf_negatives": float(negatives),
                }
            },
            {"bloom": {"mean_expected_fpr": expected}},
        )

    def test_bloom_fpr_degraded_fires(self):
        signals = self._bloom_signals(fps=30, negatives=270, expected=0.001)
        (finding,) = evaluate_signals(signals)
        assert finding.code == "bloom_fpr_degraded"
        assert finding.value == pytest.approx(0.1)
        # Observed must exceed max(floor, factor * theoretical).
        assert finding.threshold == BF_FPR_FLOOR

    def test_bloom_rule_needs_min_decisions(self):
        signals = self._bloom_signals(
            fps=MIN_BF_DECISIONS // 2, negatives=MIN_BF_DECISIONS // 2 - 1,
            expected=0.0,
        )
        assert evaluate_signals(signals) == []

    def test_bloom_within_theoretical_does_not_fire(self):
        signals = self._bloom_signals(fps=10, negatives=990, expected=0.01)
        assert evaluate_signals(signals) == []

    def test_lock_contention_fires(self):
        signals = build_signals(
            None, {"locks": {"acquires": 200, "waits": 100, "timeouts": 0}}
        )
        (finding,) = evaluate_signals(signals)
        assert finding.code == "lock_contention"
        assert finding.value == pytest.approx(0.5)
        assert finding.threshold == LOCK_WAIT_RATIO

    def test_lock_contention_needs_min_acquires(self):
        signals = build_signals(
            None,
            {"locks": {"acquires": MIN_LOCK_ACQUIRES - 1,
                       "waits": MIN_LOCK_ACQUIRES - 1, "timeouts": 0}},
        )
        assert evaluate_signals(signals) == []

    def test_lock_timeouts_are_critical(self):
        signals = build_signals(
            None, {"locks": {"acquires": 10, "waits": 0, "timeouts": 2}}
        )
        (finding,) = evaluate_signals(signals)
        assert finding.code == "lock_timeouts"
        assert finding.severity == "critical"

    def test_wal_fsync_slow_fires(self):
        signals = build_signals(
            {"histograms": {"wal_fsync_ns": {"count": 30, "p99": 2 * FSYNC_P99_NS}}}
        )
        (finding,) = evaluate_signals(signals)
        assert finding.code == "wal_fsync_slow"
        assert finding.severity == "warning"

    def test_trace_truncated_is_informational(self):
        signals = build_signals(None, None, {"recorded": 10, "dropped": 3})
        (finding,) = evaluate_signals(signals)
        assert finding.code == "trace_truncated"
        assert finding.severity == "info"

    def test_findings_sorted_most_severe_first(self):
        signals = build_signals(
            {
                "gauges": {
                    "sware_flushes": 10.0,
                    "sware_bulk_loaded_entries": 10.0,
                    "sware_top_inserted_entries": 90.0,
                }
            },
            {"locks": {"acquires": 10, "waits": 0, "timeouts": 1}},
            {"recorded": 10, "dropped": 5},
        )
        findings = evaluate_signals(signals)
        assert [f.severity for f in findings] == ["critical", "warning", "info"]


class TestHealthFinding:
    def test_to_dict_round_trips(self):
        finding = HealthFinding(
            severity="warning",
            code="x",
            message="m",
            remediation="r",
            value=0.5,
            threshold=0.25,
            attrs={"a": 1.0},
        )
        doc = finding.to_dict()
        assert doc["severity"] == "warning"
        assert doc["attrs"] == {"a": 1.0}
        assert "attrs" not in HealthFinding("info", "y", "m", "r").to_dict()
