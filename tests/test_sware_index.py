"""Tests for the SortednessAwareIndex wrapper (SA B+-tree / SA Bε-tree)."""

import random

import pytest

from repro.core.config import SWAREConfig
from repro.core.factory import (
    make_baseline_btree,
    make_sa_betree,
    make_sa_btree,
)
from repro.storage.costmodel import CostModel, Meter


def sa_btree(capacity=64, page_size=8, **overrides):
    return make_sa_btree(
        SWAREConfig(buffer_capacity=capacity, page_size=page_size, **overrides),
        leaf_capacity=8,
        internal_capacity=8,
    )


class TestBasics:
    def test_insert_get_through_buffer(self):
        index = sa_btree()
        index.insert(5, "five")
        assert index.get(5) == "five"
        # Still buffered, not yet in the tree.
        assert index.backend.get(5) is None

    def test_none_value_rejected(self):
        index = sa_btree()
        with pytest.raises(ValueError):
            index.insert(1, None)

    def test_get_missing(self):
        index = sa_btree()
        index.insert(5, "x")
        assert index.get(99) is None

    def test_contains(self):
        index = sa_btree()
        index.insert(5, "x")
        assert 5 in index
        assert 6 not in index

    def test_update_in_buffer_wins_over_tree(self):
        index = sa_btree(capacity=16)
        for key in range(16):  # fills the buffer -> flush
            index.insert(key, "v1")
        index.insert(3, "v2")  # buffered newer version
        assert index.get(3) == "v2"

    def test_flush_all_moves_everything_to_tree(self):
        index = sa_btree()
        for key in (5, 1, 9):
            index.insert(key, key)
        index.flush_all()
        assert len(index.buffer) == 0
        assert sorted(dict(index.backend.iter_items())) == [1, 5, 9]

    def test_flush_all_idempotent_on_empty(self):
        index = sa_btree()
        index.flush_all()
        index.flush_all()
        assert index.get(1) is None


class TestFlushRouting:
    def test_sorted_ingest_is_all_bulk_loads(self):
        index = sa_btree(capacity=32)
        for key in range(200):
            index.insert(key, key)
        index.flush_all()
        assert index.stats.top_inserted_entries == 0
        assert index.stats.bulk_loaded_entries == 200

    def test_overlapping_entries_are_top_inserted(self):
        index = sa_btree(capacity=16)
        for key in range(100, 200):
            index.insert(key, key)
        index.flush_all()
        bulk_before = index.stats.bulk_loaded_entries
        index.insert(50, 50)  # below the tree's max -> must be a top-insert
        index.flush_all()
        assert index.stats.top_inserted_entries == 1
        assert index.stats.bulk_loaded_entries == bulk_before
        assert index.get(50) == 50

    def test_flush_dedups_versions(self):
        index = sa_btree(capacity=16)
        index.insert(5, "a")
        index.insert(1, "start-tail")
        index.insert(5, "b")
        index.flush_all()
        # Only the newest version of key 5 reached the tree.
        assert index.backend.get(5) == "b"
        assert index.stats.ingested_entries == 2

    def test_automatic_flush_on_full(self):
        index = sa_btree(capacity=16)
        for key in range(16):
            index.insert(key, key)
        assert index.stats.flushes == 1
        assert len(index.buffer) < 16


class TestDeletes:
    def test_delete_buffered_key(self):
        index = sa_btree()
        index.insert(5, "x")
        index.delete(5)
        assert index.get(5) is None

    def test_delete_tree_key_within_buffer_range(self):
        index = sa_btree(capacity=16)
        for key in range(16):
            index.insert(key, key)  # flushed
        index.insert(0, 0)  # repopulate buffer so it has a range
        index.insert(15, 15)
        index.delete(7)  # 7 is in the tree; within buffer range -> tombstone
        assert index.stats.tombstones_buffered == 1
        assert index.get(7) is None
        index.flush_all()
        assert index.get(7) is None
        assert index.backend.get(7) is None

    def test_delete_outside_buffer_range_goes_to_tree(self):
        index = sa_btree(capacity=16)
        for key in range(16):
            index.insert(key, key)
        index.insert(100, 100)
        index.insert(101, 101)
        index.delete(3)  # outside buffer range [100, 101] -> direct tree delete
        assert index.stats.tombstones_buffered == 0
        assert index.get(3) is None

    def test_delete_then_reinsert(self):
        index = sa_btree()
        index.insert(5, "a")
        index.delete(5)
        index.insert(5, "b")
        assert index.get(5) == "b"

    def test_tombstone_beyond_tree_max_dropped_at_flush(self):
        index = sa_btree()
        index.insert(10, "x")
        index.delete(10)  # tombstone for a buffer-only key
        index.flush_all()
        assert index.stats.tombstones_dropped >= 1
        assert index.backend.get(10) is None


class TestRangeQueries:
    def test_merges_buffer_and_tree(self):
        index = sa_btree(capacity=16)
        for key in range(0, 32, 2):  # flushes once
            index.insert(key, "tree-ish")
        index.insert(5, "buffered")
        result = dict(index.range_query(0, 10))
        assert result[5] == "buffered"
        assert result[4] == "tree-ish"

    def test_buffered_version_shadows_tree(self):
        index = sa_btree(capacity=16)
        for key in range(16):
            index.insert(key, "old")
        index.insert(7, "new")
        assert dict(index.range_query(6, 8))[7] == "new"

    def test_tombstone_hides_tree_entry_in_range(self):
        index = sa_btree(capacity=16)
        for key in range(16):
            index.insert(key, key)
        index.insert(0, 0)
        index.insert(15, 15)
        index.delete(7)
        assert 7 not in dict(index.range_query(0, 15))

    def test_empty_range(self):
        index = sa_btree()
        index.insert(5, 5)
        assert index.range_query(100, 200) == []


class TestQueryDrivenSortingIntegration:
    def test_reads_trigger_query_sorting(self):
        index = sa_btree(capacity=64, page_size=8, query_sorting_threshold=0.10)
        index.insert(50, 50)
        for key in range(20):  # out-of-order tail
            index.insert(key, key)
        before = index.stats.query_sorts
        index.get(3)
        assert index.stats.query_sorts == before + 1
        assert index.get(3) == 3

    def test_range_queries_also_trigger(self):
        index = sa_btree(capacity=64, page_size=8, query_sorting_threshold=0.10)
        index.insert(50, 50)
        for key in range(20):
            index.insert(key, key)
        index.range_query(0, 5)
        assert index.stats.query_sorts >= 1


class TestEquivalenceWithDict:
    @pytest.mark.parametrize("backend", ["btree", "betree"])
    def test_randomized_mixed_operations(self, backend):
        rng = random.Random(42)
        config = SWAREConfig(buffer_capacity=128, page_size=16)
        if backend == "btree":
            index = make_sa_btree(config, leaf_capacity=8, internal_capacity=8)
        else:
            index = make_sa_betree(config, node_size=16, leaf_capacity=8)
        model = {}
        for step in range(8000):
            op = rng.random()
            key = rng.randrange(1500)
            if op < 0.55:
                index.insert(key, key + step)
                model[key] = key + step
            elif op < 0.70:
                index.delete(key)
                model.pop(key, None)
            elif op < 0.92:
                assert index.get(key) == model.get(key), (backend, step, key)
            else:
                lo, hi = key, key + rng.randrange(40)
                expected = sorted((k, v) for k, v in model.items() if lo <= k <= hi)
                assert index.range_query(lo, hi) == expected, (backend, step)
        index.flush_all()
        assert sorted(model.items()) == list(index.backend.iter_items())
        index.backend.check_invariants()
        index.buffer.check_invariants()


class TestDescribe:
    def test_describe_shape(self):
        index = sa_btree()
        index.insert(1, 1)
        snapshot = index.describe()
        assert "buffer" in snapshot and "stats" in snapshot
        assert 0 < snapshot["buffer_fill"] <= 1.0


class TestCostAccounting:
    def test_sorted_ingest_cheaper_than_baseline(self):
        model = CostModel()
        meter_sa, meter_base = Meter(), Meter()
        sa = make_sa_btree(
            SWAREConfig(buffer_capacity=128, page_size=16), meter=meter_sa
        )
        base = make_baseline_btree(meter=meter_base)
        for key in range(5000):
            sa.insert(key, key)
            base.insert(key, key)
        assert meter_sa.nanos(model) < meter_base.nanos(model) / 3

    def test_buckets_populated(self):
        meter = Meter()
        sa = make_sa_btree(SWAREConfig(buffer_capacity=64, page_size=8), meter=meter)
        for key in range(200):
            sa.insert(key, key)
        sa.get(50)
        buckets = meter.bucket_nanos(CostModel())
        assert "bulk_load" in buckets
        assert "buffer_search" in buckets
