"""Tests for the blocking reader–writer locks (repro.core.locks)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.locks import (
    EXCLUSIVE,
    SHARED,
    BlockingLockManager,
    RWLock,
)
from repro.errors import LockTimeout, ReproError


class TestRWLockGrants:
    def test_free_lock_grants_immediately(self):
        lock = RWLock("r")
        assert lock.acquire("a", SHARED) == 0.0
        assert lock.mode == SHARED
        lock.release("a")
        assert lock.mode is None

    def test_readers_share(self):
        lock = RWLock("r")
        lock.acquire("a", SHARED)
        lock.acquire("b", SHARED)
        assert lock.holders() == {"a", "b"}
        lock.release("a")
        lock.release("b")

    def test_sole_holder_upgrades_in_place(self):
        lock = RWLock("r")
        lock.acquire("a", SHARED)
        lock.acquire("a", EXCLUSIVE)
        assert lock.mode == EXCLUSIVE
        assert lock.holders() == {"a"}
        lock.release("a")

    def test_reacquire_covered_mode_is_noop(self):
        lock = RWLock("r")
        lock.acquire("a", EXCLUSIVE)
        lock.acquire("a", SHARED)  # covered by the X hold
        assert lock.mode == EXCLUSIVE
        lock.release("a")
        assert lock.mode is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            RWLock("r").acquire("a", "Z")

    def test_release_without_hold_raises(self):
        with pytest.raises(ReproError):
            RWLock("r").release("ghost")


class TestRWLockBlocking:
    def test_writer_waits_for_reader(self):
        lock = RWLock("r")
        lock.acquire("reader", SHARED)
        waited = []

        def writer():
            waited.append(lock.acquire("writer", EXCLUSIVE, timeout=5.0))

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)
        assert not waited  # still blocked
        lock.release("reader")
        thread.join(timeout=5.0)
        assert waited and waited[0] > 0
        assert lock.mode == EXCLUSIVE
        lock.release("writer")

    def test_timeout_raises_locktimeout(self):
        lock = RWLock("r")
        lock.acquire("holder", EXCLUSIVE)
        start = time.monotonic()
        with pytest.raises(LockTimeout):
            lock.acquire("other", SHARED, timeout=0.05)
        assert time.monotonic() - start < 2.0
        # The holder is undisturbed and the waiter left nothing behind.
        assert lock.holders() == {"holder"}
        lock.release("holder")

    def test_upgrade_field_times_out(self):
        """Two readers both upgrading is the §IV-D deadlock: each waits
        for the other to leave. The timeout surfaces it."""
        lock = RWLock("r")
        lock.acquire("a", SHARED)
        lock.acquire("b", SHARED)
        results = {}

        def upgrade(worker):
            try:
                lock.acquire(worker, EXCLUSIVE, timeout=0.2)
                results[worker] = "upgraded"
            except LockTimeout:
                results[worker] = "timeout"

        threads = [
            threading.Thread(target=upgrade, args=(worker,)) for worker in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert sorted(results.values()) == ["timeout", "timeout"]

    def test_waiting_reader_joins_after_writer_leaves(self):
        lock = RWLock("r")
        lock.acquire("writer", EXCLUSIVE)
        acquired = threading.Event()

        def reader():
            lock.acquire("reader", SHARED, timeout=5.0)
            acquired.set()

        thread = threading.Thread(target=reader)
        thread.start()
        lock.release("writer")
        assert acquired.wait(timeout=5.0)
        assert lock.mode == SHARED
        lock.release("reader")
        thread.join()


class TestBlockingLockManager:
    def test_counters(self):
        manager = BlockingLockManager()
        manager.acquire("a", "buffer", SHARED)
        manager.acquire("b", "buffer", SHARED)
        manager.acquire("b", "page:0", EXCLUSIVE)
        snap = manager.snapshot()
        assert snap["acquires"] == 3
        assert snap["waits"] == 0
        manager.release("b", "page:0")
        manager.release("a", "buffer")
        # b is now the sole holder: upgrade counts.
        manager.acquire("b", "buffer", EXCLUSIVE)
        assert manager.snapshot()["upgrades"] == 1
        manager.release("b", "buffer")

    def test_timeout_counted(self):
        manager = BlockingLockManager()
        manager.acquire("a", "buffer", EXCLUSIVE)
        with pytest.raises(LockTimeout):
            manager.acquire("b", "buffer", SHARED, timeout=0.05)
        assert manager.snapshot()["timeouts"] == 1
        manager.release("a", "buffer")

    def test_wait_accounting(self):
        manager = BlockingLockManager()
        manager.acquire("a", "buffer", EXCLUSIVE)

        def releaser():
            time.sleep(0.05)
            manager.release("a", "buffer")

        thread = threading.Thread(target=releaser)
        thread.start()
        manager.acquire("b", "buffer", SHARED, timeout=5.0)
        thread.join()
        snap = manager.snapshot()
        assert snap["waits"] == 1
        assert snap["wait_ns"] > 0
        manager.release("b", "buffer")

    def test_release_all(self):
        manager = BlockingLockManager()
        manager.acquire("a", "buffer", SHARED)
        manager.acquire("a", "page:0", EXCLUSIVE)
        manager.acquire("a", "page:1", EXCLUSIVE)
        manager.release_all("a")
        for resource in ("buffer", "page:0", "page:1"):
            assert manager.mode(resource) is None
            assert manager.holders(resource) == set()

    def test_mode_and_holders_of_unknown_resource(self):
        manager = BlockingLockManager()
        assert manager.mode("nope") is None
        assert manager.holders("nope") == set()
