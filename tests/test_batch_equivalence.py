"""Observational equivalence of the batch entry points.

The batch API (``put_many``/``get_many``/``insert_many``/``add_many``) is a
pure constant-factor optimization: a batched replay of an operation stream
must leave every backend in the same observable state as the sequential
loop — same lookup results, same flush boundaries, same component sizes,
same invariants. These properties pin that contract across all three
backends (B+-tree, Bε-tree, LSM) and the supporting layers (SWARE buffer,
Bloom filters, the batched workload executor, the perf gate).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.perfgate import compare_throughputs, extract_throughputs
from repro.bench.runner import execute_operations, execute_operations_batched
from repro.betree.betree import BeTree, BeTreeConfig
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.core.config import SWAREConfig
from repro.core.factory import make_sa_betree, make_sa_btree
from repro.core.sware import SortednessAwareIndex
from repro.filters.bloom import BloomFilter
from repro.lsm.lsm import LSMConfig, LSMTree
from repro.workloads.spec import DELETE, INSERT, LOOKUP, RANGE


def _sware_config():
    return SWAREConfig(buffer_capacity=32, page_size=4)


def _sa_btree():
    return make_sa_btree(_sware_config(), leaf_capacity=4, internal_capacity=4)


def _sa_betree():
    return make_sa_betree(_sware_config(), node_size=8, leaf_capacity=4)


def _sa_lsm():
    return SortednessAwareIndex(
        LSMTree(LSMConfig(memtable_capacity=16)), config=_sware_config()
    )


BACKENDS = [("btree", _sa_btree), ("betree", _sa_betree), ("lsm", _sa_lsm)]

keys_st = st.integers(min_value=0, max_value=200)
items_st = st.lists(st.tuples(keys_st, st.integers(min_value=1, max_value=10**6)))


@pytest.mark.parametrize("name,make", BACKENDS, ids=[n for n, _ in BACKENDS])
@given(items=items_st, probe_keys=st.lists(keys_st, max_size=60))
@settings(max_examples=40, deadline=None)
def test_put_many_matches_sequential_inserts(name, make, items, probe_keys):
    """put_many == insert loop: same lookups, flush boundaries, components."""
    seq, bat = make(), make()
    for key, value in items:
        seq.insert(key, value)
    bat.put_many(items)

    assert seq.stats.flushes == bat.stats.flushes
    assert seq.stats.inserts == bat.stats.inserts
    assert seq.buffer.component_sizes() == bat.buffer.component_sizes()
    seq.buffer.check_invariants()
    bat.buffer.check_invariants()
    check = getattr(bat.backend, "check_invariants", None)
    if check is not None:
        check()
    probes = probe_keys + [key for key, _value in items][:40]
    assert [seq.get(k) for k in probes] == bat.get_many(probes)
    lo, hi = 0, 200
    assert seq.range_query(lo, hi) == bat.range_query(lo, hi)


@pytest.mark.parametrize("name,make", BACKENDS, ids=[n for n, _ in BACKENDS])
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "lookup"]), keys_st),
        max_size=150,
    )
)
@settings(max_examples=40, deadline=None)
def test_interleaved_stream_equivalence(name, make, operations):
    """A mixed insert/delete/lookup stream replayed batched (consecutive
    inserts via put_many, lookups via get_many) matches per-op replay."""
    seq, bat = make(), make()
    seq_results, bat_results = [], []
    pending = []

    def drain():
        if pending:
            bat.put_many(pending)
            del pending[:]

    for step, (op, key) in enumerate(operations):
        if op == "insert":
            seq.insert(key, step + 1)
            pending.append((key, step + 1))
        elif op == "delete":
            seq.delete(key)
            drain()
            bat.delete(key)
        else:
            seq_results.append(seq.get(key))
            drain()
            bat_results.extend(bat.get_many([key]))
    drain()

    assert seq_results == bat_results
    assert seq.stats.flushes == bat.stats.flushes
    assert seq.buffer.component_sizes() == bat.buffer.component_sizes()
    seq.buffer.check_invariants()
    bat.buffer.check_invariants()
    for key in range(201):
        assert seq.get(key) == bat.get(key)


@given(items=items_st, probe_keys=st.lists(st.integers(-10, 310), max_size=400))
@settings(max_examples=60, deadline=None)
def test_btree_insert_many_get_many(items, probe_keys):
    """Raw B+-tree batch ops (duplicates included: later value wins)."""
    seq = BPlusTree(BPlusTreeConfig(leaf_capacity=4, internal_capacity=4))
    bat = BPlusTree(BPlusTreeConfig(leaf_capacity=4, internal_capacity=4))
    for key, value in items:
        seq.insert(key, value)
    bat.insert_many(items)
    seq.check_invariants()
    bat.check_invariants()
    assert list(seq.iter_items()) == list(bat.iter_items())
    assert seq.n_entries == bat.n_entries
    # probe_keys can be dense (chain-merge strategy) or sparse (partition).
    assert [seq.get(k) for k in probe_keys] == bat.get_many(probe_keys)
    assert bat.get_many([]) == []


@given(items=items_st)
@settings(max_examples=60, deadline=None)
def test_betree_insert_many(items):
    seq = BeTree(BeTreeConfig(node_size=8, leaf_capacity=4))
    bat = BeTree(BeTreeConfig(node_size=8, leaf_capacity=4))
    for key, value in items:
        seq.insert(key, value)
    bat.insert_many(items)
    seq.check_invariants()
    bat.check_invariants()
    assert list(seq.iter_items()) == list(bat.iter_items())


@given(items=items_st)
@settings(max_examples=60, deadline=None)
def test_lsm_insert_many(items):
    """LSM batch inserts flush the memtable at the same points."""
    seq = LSMTree(LSMConfig(memtable_capacity=8))
    bat = LSMTree(LSMConfig(memtable_capacity=8))
    for key, value in items:
        seq.insert(key, value)
    bat.insert_many(items)
    seq.check_invariants()
    bat.check_invariants()
    assert seq.flushes == bat.flushes
    assert list(seq.iter_items()) == list(bat.iter_items())


@given(
    keys=st.lists(st.integers(min_value=0, max_value=2**62), max_size=120),
    family=st.sampled_from(["splitmix64", "murmur3"]),
    rotation=st.sampled_from([0, 17]),
)
@settings(max_examples=60, deadline=None)
def test_bloom_add_many_bit_identical(keys, family, rotation):
    """add_many sets exactly the bits the per-key loop sets."""
    seq = BloomFilter(64, hash_family=family, rotation=rotation)
    bat = BloomFilter(64, hash_family=family, rotation=rotation)
    for key in keys:
        seq.add(key)
    bat.add_many(keys)
    assert bytes(seq._bits) == bytes(bat._bits)
    assert seq.n_added == bat.n_added
    assert seq.saturation == bat.saturation
    probes = keys + [k + 1 for k in keys][:30]
    assert [seq.may_contain(k) for k in probes] == bat.may_contain_many(probes)
    bat.clear()
    assert bat.saturation == 0.0
    assert not any(bat.may_contain_many(keys))


@given(
    stream=st.lists(
        st.tuples(st.sampled_from([INSERT, LOOKUP, RANGE, DELETE]), keys_st),
        max_size=200,
    ),
    batch_size=st.sampled_from([2, 7, 64]),
)
@settings(max_examples=40, deadline=None)
def test_executor_batched_matches_perop(stream, batch_size):
    """execute_operations_batched leaves the index in the same state."""
    ops = []
    for op, key in stream:
        if op == INSERT:
            ops.append((INSERT, key, key * 2 + 1))
        elif op == RANGE:
            ops.append((RANGE, key, key + 10))
        else:
            ops.append((op, key, None))
    seq, bat = _sa_btree(), _sa_btree()
    n_seq = execute_operations(seq, ops)
    n_bat = execute_operations_batched(bat, ops, batch_size)
    assert n_seq == n_bat == len(ops)
    assert seq.stats.flushes == bat.stats.flushes
    assert seq.buffer.component_sizes() == bat.buffer.component_sizes()
    for key in range(201):
        assert seq.get(key) == bat.get(key)


def _artifact(gauges):
    return {"metrics": {"gauges": gauges}}


def test_perfgate_extract_and_compare():
    base = _artifact({"x_ops_per_s": 1000.0, "y_ops_per_s": 500.0, "z_other": 3.0})
    assert extract_throughputs(base) == {"x_ops_per_s": 1000.0, "y_ops_per_s": 500.0}

    ok = _artifact({"x_ops_per_s": 600.0, "y_ops_per_s": 260.0})
    assert compare_throughputs(base, ok, tolerance=2.0) == []

    slow = _artifact({"x_ops_per_s": 499.0, "y_ops_per_s": 600.0})
    failures = compare_throughputs(base, slow, tolerance=2.0)
    assert len(failures) == 1 and "x_ops_per_s" in failures[0]

    missing = _artifact({"x_ops_per_s": 1000.0})
    failures = compare_throughputs(base, missing, tolerance=2.0)
    assert len(failures) == 1 and "y_ops_per_s" in failures[0]

    assert compare_throughputs(_artifact({}), ok) == [
        "baseline artifact has no *_ops_per_s gauges"
    ]
    with pytest.raises(ValueError):
        compare_throughputs(base, ok, tolerance=0.5)
    assert extract_throughputs("not a dict") == {}
