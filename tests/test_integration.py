"""End-to-end integration tests reproducing the paper's headline claims at
tiny scale (the full-size versions live in benchmarks/)."""

import pytest

from repro.bench.experiments import common
from repro.bench.runner import run_phases, speedup
from repro.workloads.spec import INSERT, value_for


def ingest_ops(keys):
    return [(INSERT, key, value_for(key)) for key in keys]


class TestHeadlineClaims:
    """Each test pins one qualitative claim from the paper's evaluation."""

    N = 6000

    def _speedup(self, k_fraction, l_fraction, read_fraction):
        keys = common.keys_for(self.N, k_fraction, l_fraction, seed=7)
        ops = common.mixed_ops(keys, read_fraction, seed=7)
        base = run_phases(common.baseline_btree_factory(), [("mixed", ops)])
        sa = run_phases(
            common.sa_btree_factory(common.buffer_config(self.N, 0.01)),
            [("mixed", ops)],
        )
        return speedup(base, sa)

    def test_sorted_write_heavy_is_large_win(self):
        assert self._speedup(0.0, 0.0, 0.10) > 4.0

    def test_near_sorted_write_heavy_wins(self):
        assert self._speedup(0.10, 0.05, 0.10) > 1.5

    def test_scrambled_in_memory_costs_a_modest_penalty(self):
        value = self._speedup(None, None, 0.50)
        assert 0.7 < value < 1.0  # paper: ~20% slower

    def test_speedup_decays_with_reads(self):
        assert self._speedup(0.0, 0.0, 0.10) > self._speedup(0.0, 0.0, 0.90)

    def test_more_sortedness_more_speedup(self):
        sorted_w = self._speedup(0.0, 0.0, 0.25)
        near = self._speedup(0.10, 0.05, 0.25)
        less = self._speedup(1.00, 0.50, 0.25)
        assert sorted_w > near > less

    def test_ondisk_always_wins_for_sorted_data(self):
        keys = common.keys_for(self.N, 0.0, 0.0, seed=7)
        pool = common.ondisk_pool_capacity(self.N)
        for ratio in (0.10, 0.90):
            ops = common.mixed_ops(keys, ratio, seed=7)
            base = run_phases(
                common.baseline_btree_factory(pool_capacity=pool), [("mixed", ops)]
            )
            sa = run_phases(
                common.sa_btree_factory(
                    common.buffer_config(self.N, 0.04), pool_capacity=pool
                ),
                [("mixed", ops)],
            )
            assert speedup(base, sa) > 1.0


class TestIngestionRouting:
    def test_fully_sorted_never_top_inserts(self):
        keys = common.keys_for(4000, 0.0, 0.0, seed=7)
        result = run_phases(
            common.sa_btree_factory(common.buffer_config(4000, 0.01)),
            [("ingest", ingest_ops(keys))],
            flush_after="ingest",
        )
        assert result.sware_stats["top_inserted_entries"] == 0

    def test_top_inserts_grow_with_k(self):
        tops = []
        for k in (0.02, 0.10, 0.50):
            keys = common.keys_for(4000, k, 0.05, seed=7)
            result = run_phases(
                common.sa_btree_factory(common.buffer_config(4000, 0.01)),
                [("ingest", ingest_ops(keys))],
                flush_after="ingest",
            )
            tops.append(result.sware_stats["top_inserted_entries"])
        assert tops == sorted(tops)
        assert tops[0] < tops[-1]

    def test_all_entries_accounted_for(self):
        keys = common.keys_for(4000, 0.20, 0.10, seed=7)
        result = run_phases(
            common.sa_btree_factory(common.buffer_config(4000, 0.01)),
            [("ingest", ingest_ops(keys))],
            flush_after="ingest",
        )
        stats = result.sware_stats
        assert stats["bulk_loaded_entries"] + stats["top_inserted_entries"] == 4000


class TestSpaceUtilization:
    def test_sorted_ingest_saves_leaf_slots(self):
        keys = common.keys_for(6000, 0.0, 0.0, seed=7)
        base = run_phases(common.baseline_btree_factory(), [("i", ingest_ops(keys))])
        sa = run_phases(
            common.sa_btree_factory(common.buffer_config(6000, 0.01)),
            [("i", ingest_ops(keys))],
            flush_after="i",
        )
        savings = 1 - sa.index_stats["space_leaf_slots"] / base.index_stats["space_leaf_slots"]
        assert savings > 0.3  # paper: up to 48%


class TestSABeTree:
    def test_sa_betree_wins_for_sorted_writes(self):
        keys = common.keys_for(5000, 0.0, 0.0, seed=7)
        ops = common.mixed_ops(keys, 0.10, seed=7)
        be = run_phases(common.baseline_betree_factory(), [("mixed", ops)])
        sa = run_phases(
            common.sa_betree_factory(common.buffer_config(5000, 0.01)),
            [("mixed", ops)],
        )
        assert speedup(be, sa) > 2.0

    def test_betree_itself_benefits_from_sortedness(self):
        sorted_keys = common.keys_for(5000, 0.0, 0.0, seed=7)
        scrambled = common.keys_for(5000, None, None, seed=7)
        runs = {}
        for label, keys in (("sorted", sorted_keys), ("scrambled", scrambled)):
            runs[label] = run_phases(
                common.baseline_betree_factory(),
                [("ingest", ingest_ops(keys))],
            ).sim_ns
        assert runs["sorted"] < runs["scrambled"]


class TestExperimentModulesSmoke:
    """Every experiment module runs end-to-end at toy scale and produces a
    non-empty report (full-scale validation lives in benchmarks/)."""

    @pytest.mark.parametrize(
        "module,kwargs",
        [
            ("fig09", {"n": 400, "with_plots": False}),
            ("fig11", {"n": 2000}),
            ("fig13", {"n": 2000, "n_lookups": 300}),
            ("fig15", {"n": 3000, "n_lookups": 300}),
            ("fig16", {"n": 2000}),
            ("table1", {"n": 3000}),
            ("fig21", {"n": 3000}),
            ("flush_threshold", {"n": 2000}),
            ("zonemap_ablation", {"n": 3000, "n_lookups": 500}),
            ("space", {"n": 2000}),
        ],
    )
    def test_experiment_runs(self, module, kwargs):
        import importlib

        mod = importlib.import_module(f"repro.bench.experiments.{module}")
        result = mod.run(**kwargs)
        assert isinstance(result.report, str) and len(result.report) > 50

    def test_fig10_small(self):
        from repro.bench.experiments import fig10

        result = fig10.run(
            n=2000, ratios=[0.25], presets=[("sorted", 0.0, 0.0)]
        )
        assert result.data[("sorted", 0.25)] > 1.0

    def test_fig20_small(self):
        from repro.bench.experiments import fig20

        result = fig20.run(n=2000, ratios=[0.25])
        assert result.data[(0.25, "S", "sa_betree")] > 1.0
