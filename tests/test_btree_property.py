"""Property-based tests: the B+-tree against a dict/sorted-list model."""

import random

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.btree.btree import BPlusTree, BPlusTreeConfig

CONFIGS = [
    BPlusTreeConfig(leaf_capacity=4, internal_capacity=4),
    BPlusTreeConfig(leaf_capacity=4, internal_capacity=4, split_factor=0.8),
    BPlusTreeConfig(leaf_capacity=8, internal_capacity=5, tail_leaf_optimization=True),
    BPlusTreeConfig(leaf_capacity=5, internal_capacity=8, split_factor=0.7),
]


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get", "range"]),
            st.integers(min_value=0, max_value=200),
        ),
        max_size=300,
    ),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
)
@settings(max_examples=120, deadline=None)
def test_random_ops_match_dict_model(ops, config_index):
    tree = BPlusTree(CONFIGS[config_index])
    model = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key * 3)
            model[key] = key * 3
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        elif op == "get":
            assert tree.get(key) == model.get(key)
        else:
            lo, hi = key, key + 25
            expected = sorted((k, v) for k, v in model.items() if lo <= k <= hi)
            assert tree.range_query(lo, hi) == expected
    tree.check_invariants()
    assert dict(tree.iter_items()) == model


@given(
    n_bulk_rounds=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_bulk_load_interleaved_with_topinserts(n_bulk_rounds, seed):
    """Metamorphic: any interleaving of append-only bulk loads and
    overlapping top-inserts equals the dict of the same operations."""
    rng = random.Random(seed)
    tree = BPlusTree(BPlusTreeConfig(leaf_capacity=4, internal_capacity=4))
    model = {}
    next_key = 0
    for _ in range(n_bulk_rounds):
        size = rng.randint(1, 40)
        batch = [(next_key + i, rng.randint(0, 9)) for i in range(size)]
        next_key += size
        tree.bulk_load_append(batch)
        model.update(dict(batch))
        for _ in range(rng.randint(0, 15)):
            key = rng.randint(0, max(next_key - 1, 0))
            value = rng.randint(100, 200)
            tree.insert(key, value)
            model[key] = value
    tree.check_invariants()
    assert dict(tree.iter_items()) == model


class BTreeMachine(RuleBasedStateMachine):
    """Stateful fuzzing with invariant checks after every rule."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(
            BPlusTreeConfig(leaf_capacity=4, internal_capacity=4, split_factor=0.8,
                            tail_leaf_optimization=True)
        )
        self.model = {}

    @rule(key=st.integers(min_value=0, max_value=100))
    def insert(self, key):
        self.tree.insert(key, key)
        self.model[key] = key

    @rule(key=st.integers(min_value=0, max_value=100))
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=st.integers(min_value=-10, max_value=110))
    def get(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @invariant()
    def structure_holds(self):
        self.tree.check_invariants()

    @invariant()
    def contents_match(self):
        assert dict(self.tree.iter_items()) == self.model


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(max_examples=25, deadline=None, stateful_step_count=40)
