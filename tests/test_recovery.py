"""Crash-recovery acceptance tests (the durability contract).

The sweep in :class:`TestCrashInjectionSweep` kills the "process" at every
mutating I/O boundary the WAL + checkpoint paths cross — several hundred
seeded crash points — then recovers from the on-disk wreckage and asserts:

* **no acknowledged write is ever lost**: every operation whose call
  returned before the crash is visible after recovery;
* **no torn record is ever served**: the recovered state contains nothing
  except the acknowledged operations' effects, plus at most the one
  *in-flight* operation (which may legally survive in full — e.g. the
  crash hit the fsync after its frame was completely written — but never
  as a partial/corrupt value).
"""

import os
import random
import threading

import pytest

from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.core.concurrent import ConcurrentSortednessAwareIndex
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.storage.faults import FaultyEnv, SimulatedCrash
from repro.storage.pagefile import CheckpointStore
from repro.storage.wal import WriteAheadLog

SLOT_SIZE = 256
CONFIG = SWAREConfig(buffer_capacity=16, page_size=4)
TREE_CONFIG = BPlusTreeConfig(leaf_capacity=8, internal_capacity=8)
N_OPS = 80
CHECKPOINT_EVERY = 25
SEEDS = (1, 2, 3)


def _ops_for(seed):
    """The deterministic logical workload for one seed."""
    rng = random.Random(seed)
    ops = []
    for i in range(N_OPS):
        if i and i % CHECKPOINT_EVERY == 0:
            ops.append(("checkpoint", None, None))
        elif rng.random() < 0.15:
            ops.append(("delete", rng.randrange(100), None))
        else:
            key = rng.randrange(100)
            ops.append(("put", key, (key, i)))
    return ops


def _run_workload(workdir, crash_at, seed):
    """Run the seeded workload under fault injection.

    Returns ``(acked, in_flight, total_io_ops, crashed)`` where ``acked``
    is every op whose call returned and ``in_flight`` is the op being
    applied when the crash hit (None when the run completed).
    """
    env = FaultyEnv(crash_at=crash_at, seed=seed)
    ckpt = os.path.join(workdir, "ck.db")
    walp = os.path.join(workdir, "log.wal")
    acked = []
    in_flight = None
    try:
        wal = WriteAheadLog(walp, opener=env.open)
        store = CheckpointStore(
            ckpt, slot_size=SLOT_SIZE, opener=env.open, replace=env.replace
        )
        index = SortednessAwareIndex(
            BPlusTree(TREE_CONFIG), config=CONFIG, wal=wal
        )
        for op in _ops_for(seed):
            kind, key, value = op
            in_flight = op
            if kind == "checkpoint":
                index.checkpoint(store)
            elif kind == "delete":
                index.delete(key)
            else:
                index.insert(key, value)
            acked.append(op)
            in_flight = None
        return acked, None, env.ops, False
    except SimulatedCrash:
        return acked, in_flight, env.ops, True


def _apply(state, op):
    kind, key, value = op
    if kind == "put":
        state[key] = value
    elif kind == "delete":
        state.pop(key, None)
    return state


def _expected_state(acked):
    state = {}
    for op in acked:
        _apply(state, op)
    return state


def _recover(workdir):
    store = CheckpointStore(os.path.join(workdir, "ck.db"), slot_size=SLOT_SIZE)
    return store.recover(
        wal_path=os.path.join(workdir, "log.wal"), config=CONFIG
    )


class TestCrashInjectionSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_io_boundary(self, tmp_path, seed):
        """Crash at every mutating I/O op of the workload; recover; verify."""
        full = tmp_path / "full"
        full.mkdir()
        _acked, _inf, total_ops, crashed = _run_workload(str(full), None, seed)
        assert not crashed
        assert total_ops >= 170, "workload too small to be a meaningful sweep"

        for crash_at in range(total_ops):
            workdir = tmp_path / f"crash{crash_at}"
            workdir.mkdir()
            acked, in_flight, _ops, crashed = _run_workload(
                str(workdir), crash_at, seed
            )
            assert crashed, f"crash_at={crash_at} did not crash"
            index, report = _recover(str(workdir))
            got = dict(index.items())
            expected = _expected_state(acked)
            if got != expected:
                # The only other legal state: the in-flight op survived in
                # full (its WAL frame was durable before the crash point).
                assert in_flight is not None, (
                    f"crash_at={crash_at}: unacknowledged divergence {got} "
                    f"vs {expected}"
                )
                with_in_flight = _apply(dict(expected), in_flight)
                assert got == with_in_flight, (
                    f"crash_at={crash_at}: torn or lost data; "
                    f"got={got} expected={expected} in_flight={in_flight}"
                )
            index.backend.check_invariants()

    def test_sweep_covers_at_least_500_crash_points(self, tmp_path):
        """The acceptance sweep spans >= 500 distinct seeded crash points."""
        total = 0
        for seed in SEEDS:
            workdir = tmp_path / f"seed{seed}"
            workdir.mkdir()
            _a, _i, ops, crashed = _run_workload(str(workdir), None, seed)
            assert not crashed
            total += ops
        assert total >= 500, f"only {total} crash points across seeds {SEEDS}"


class TestRecoveryPaths:
    def test_recover_with_no_files_is_fresh(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.db"), slot_size=SLOT_SIZE)
        index, report = store.recover(wal_path=str(tmp_path / "log.wal"))
        assert not report.checkpoint_found
        assert report.wal_records_replayed == 0
        assert report.entries == 0
        index.insert(1, "post-recovery")
        assert index.get(1) == "post-recovery"

    def test_recover_wal_only(self, tmp_path):
        walp = str(tmp_path / "log.wal")
        with WriteAheadLog(walp) as wal:
            index = SortednessAwareIndex(BPlusTree(), config=CONFIG, wal=wal)
            for k in range(40):
                index.insert(k, k * 3)
            index.delete(7)
        store = CheckpointStore(str(tmp_path / "ck.db"), slot_size=SLOT_SIZE)
        recovered, report = store.recover(wal_path=walp, config=CONFIG)
        assert not report.checkpoint_found
        assert report.wal_records_replayed == 41
        assert recovered.get(7) is None
        assert recovered.get(13) == 39

    def test_recover_checkpoint_only(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.db"), slot_size=SLOT_SIZE)
        index = SortednessAwareIndex(BPlusTree(TREE_CONFIG), config=CONFIG)
        for k in range(60):
            index.insert(k, k)
        index.checkpoint(store)
        recovered, report = CheckpointStore(
            str(tmp_path / "ck.db"), slot_size=SLOT_SIZE
        ).recover()
        assert report.checkpoint_found
        assert report.checkpoint_epoch == 1
        assert dict(recovered.items()) == {k: k for k in range(60)}

    def test_stale_tmp_removed(self, tmp_path):
        ckpt = str(tmp_path / "ck.db")
        store = CheckpointStore(ckpt, slot_size=SLOT_SIZE)
        with open(store.tmp_path, "wb") as handle:
            handle.write(b"half-written checkpoint wreckage")
        _index, report = store.recover()
        assert report.stale_tmp_removed
        assert not os.path.exists(store.tmp_path)

    def test_crash_mid_checkpoint_preserves_previous(self, tmp_path):
        """Atomicity: a torn second checkpoint never shadows the first."""
        ckpt = str(tmp_path / "ck.db")
        store = CheckpointStore(ckpt, slot_size=SLOT_SIZE)
        index = SortednessAwareIndex(BPlusTree(TREE_CONFIG), config=CONFIG)
        for k in range(50):
            index.insert(k, "gen1")
        index.checkpoint(store)

        for k in range(50, 90):
            index.insert(k, "gen2")
        # Crash at each of the first 40 I/O ops of the second save.
        for crash_at in range(40):
            env = FaultyEnv(crash_at=crash_at, seed=crash_at)
            faulty = CheckpointStore(
                ckpt, slot_size=SLOT_SIZE, opener=env.open, replace=env.replace
            )
            try:
                faulty.save_index(index)
            except SimulatedCrash:
                pass
            restored = CheckpointStore(ckpt, slot_size=SLOT_SIZE).load_btree()
            items = dict(restored.iter_items())
            assert set(items.values()) in ({"gen1"}, {"gen1", "gen2"})
            # Either the old checkpoint (crash before rename) or the new
            # one (crash after) — never a mix of directories.
            assert len(items) in (50, 90)

    def test_multi_generation_crash_recover_cycle(self, tmp_path):
        """Recover, resume with a reopened WAL, crash again, recover again."""
        ckpt = str(tmp_path / "ck.db")
        walp = str(tmp_path / "log.wal")
        expected = {}

        index = SortednessAwareIndex(
            BPlusTree(TREE_CONFIG), config=CONFIG, wal=WriteAheadLog(walp)
        )
        store = CheckpointStore(ckpt, slot_size=SLOT_SIZE)
        for k in range(30):
            index.insert(k, ("gen0", k))
            expected[k] = ("gen0", k)
        index.checkpoint(store)
        for k in range(30, 45):
            index.insert(k, ("gen0", k))
            expected[k] = ("gen0", k)
        index.wal.close()  # simulate crash: buffer contents lost

        for generation in range(1, 4):
            store = CheckpointStore(ckpt, slot_size=SLOT_SIZE)
            index, report = store.recover(wal_path=walp, config=CONFIG)
            assert dict(index.items()) == expected
            index.wal = WriteAheadLog(walp)  # reopen and resume
            for k in range(10):
                key = 100 * generation + k
                index.insert(key, ("gen", generation, k))
                expected[key] = ("gen", generation, k)
            if generation == 2:
                index.checkpoint(store)
            index.wal.close()

        index, _report = CheckpointStore(ckpt, slot_size=SLOT_SIZE).recover(
            wal_path=walp, config=CONFIG
        )
        assert dict(index.items()) == expected


class TestConcurrentWAL:
    def test_threaded_writes_recover_to_live_state(self, tmp_path):
        """WAL order matches the latch apply order: recovery reproduces
        exactly the state the live concurrent index reached."""
        walp = str(tmp_path / "log.wal")
        wal = WriteAheadLog(walp, fsync_policy="batch")
        index = ConcurrentSortednessAwareIndex(
            BPlusTree(TREE_CONFIG),
            config=SWAREConfig(
                buffer_capacity=64, page_size=8, query_sorting_threshold=0.25
            ),
            wal=wal,
        )

        def work(tid):
            rng = random.Random(tid)
            for i in range(300):
                key = rng.randrange(200)
                if rng.random() < 0.15:
                    index.delete(key)
                else:
                    index.insert(key, (tid, i))

        threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        index.flush_all()
        live = dict(index.items())
        wal.sync()
        wal.close()

        store = CheckpointStore(str(tmp_path / "ck.db"), slot_size=SLOT_SIZE)
        recovered, report = store.recover(
            wal_path=walp, config=SWAREConfig(buffer_capacity=64, page_size=8)
        )
        assert report.wal_records_replayed == 1200
        assert dict(recovered.items()) == live

    def test_concurrent_checkpoint_truncates_wal(self, tmp_path):
        walp = str(tmp_path / "log.wal")
        wal = WriteAheadLog(walp, fsync_policy="batch")
        index = ConcurrentSortednessAwareIndex(
            BPlusTree(TREE_CONFIG),
            config=SWAREConfig(buffer_capacity=32, page_size=8),
            wal=wal,
        )
        store = CheckpointStore(str(tmp_path / "ck.db"), slot_size=SLOT_SIZE)
        index.put_many([(k, k) for k in range(100)])
        index.checkpoint(store)
        assert wal.tail_bytes() == 0
        index.insert(500, "after-checkpoint")
        wal.sync()
        wal.close()
        recovered, report = CheckpointStore(
            str(tmp_path / "ck.db"), slot_size=SLOT_SIZE
        ).recover(wal_path=walp, config=SWAREConfig(buffer_capacity=32, page_size=8))
        assert report.checkpoint_found
        assert report.wal_records_replayed == 1
        assert dict(recovered.items()) == {**{k: k for k in range(100)}, 500: "after-checkpoint"}
