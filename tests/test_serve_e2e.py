"""End-to-end asyncio server/client tests.

The acceptance shape from the issue: >= 4 concurrent clients against a
>= 4-shard server, pipelined requests, scatter-gather range results
identical to a single-node oracle, group-commit acks under the batch
fsync policy, and protocol-level fault handling (a corrupt frame drops
only that connection).
"""

import asyncio
import random

import pytest

from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.net import protocol as p
from repro.net.client import IndexClient, ServerError, SyncIndexClient
from repro.net.loadgen import LoadGenConfig, run_load
from repro.net.server import IndexServer
from repro.net.sharded import ShardedConfig, ShardedSortednessAwareIndex


def serve_cfg(**kw):
    kw.setdefault("n_shards", 4)
    kw.setdefault("split_threshold", 0)
    kw.setdefault("fsync_policy", "batch")
    kw.setdefault("initial_key_range", (0, 5000))
    kw.setdefault("index_config", SWAREConfig(buffer_capacity=32, page_size=8))
    return ShardedConfig(**kw)


async def start_server(tmp_path, **kw):
    index = ShardedSortednessAwareIndex(str(tmp_path / "db"), config=serve_cfg(**kw))
    server = IndexServer(index, commit_interval=0.001)
    await server.start()
    return server


class TestEndToEnd:
    def test_four_clients_match_single_node_oracle(self, tmp_path):
        async def run():
            server = await start_server(tmp_path)
            oracle = {}
            clients = [await IndexClient.connect(port=server.port) for _ in range(4)]

            async def worker(cid, client):
                rng = random.Random(cid)
                # Each client owns keys == cid (mod 4): deterministic final
                # state despite concurrent interleaving.
                for step in range(200):
                    key = rng.randrange(0, 1250) * 4 + cid
                    if rng.random() < 0.15:
                        await client.delete(key)
                        oracle.pop(key, None)
                    else:
                        value = (cid, step)
                        await client.put(key, value)
                        oracle[key] = value

            await asyncio.gather(*[worker(i, c) for i, c in enumerate(clients)])

            # Single-node oracle: same content, no shards, no wire.
            from repro.btree.btree import BPlusTree

            single = SortednessAwareIndex(BPlusTree(), config=SWAREConfig())
            single.put_many(sorted(oracle.items()))

            client = clients[0]
            assert await client.range_query(-(1 << 62), 1 << 62) == single.range_query(
                -(1 << 62), 1 << 62
            )
            rng = random.Random(99)
            for _ in range(25):
                lo = rng.randrange(0, 5000)
                hi = lo + rng.randrange(1, 900)
                assert await client.range_query(lo, hi) == single.range_query(lo, hi)
            keys = [rng.randrange(0, 5200) for _ in range(300)]
            assert await client.get_many(keys) == single.get_many(keys)

            stats = await client.stats()
            assert stats["n_shards"] >= 4
            assert stats["server"]["connections"] == 4
            assert stats["server"]["group_commit"] is True
            assert stats["server"]["commits"] > 0

            for c in clients:
                await c.close()
            await server.stop()

        asyncio.run(run())

    def test_pipelined_burst_resolves_by_request_id(self, tmp_path):
        async def run():
            server = await start_server(tmp_path)
            async with await IndexClient.connect(port=server.port) as client:
                # Fire 200 puts + interleaved reads without awaiting each:
                # group commit parks the put acks while reads return
                # immediately, so completion order != send order.
                puts = [client.put(i, i * 10) for i in range(200)]
                await asyncio.gather(*puts)
                gets = [client.get(i) for i in range(200)]
                assert await asyncio.gather(*gets) == [i * 10 for i in range(200)]
                await client.put_many([(1000 + i, "b") for i in range(50)])
                assert await client.get(1049) == "b"
            await server.stop()

        asyncio.run(run())

    def test_server_error_is_per_request_not_fatal(self, tmp_path):
        async def run():
            server = await start_server(tmp_path)
            real_get = server.index.get

            def injected(key):
                if key == 666:
                    raise RuntimeError("injected index fault")
                return real_get(key)

            server.index.get = injected
            async with await IndexClient.connect(port=server.port) as client:
                with pytest.raises(ServerError, match="injected index fault"):
                    await client.get(666)
                # The error is scoped to that request; the connection lives.
                await client.put(5, "ok")
                assert await client.get(5) == "ok"
            await server.stop()

        asyncio.run(run())

    def test_corrupt_frame_closes_connection_only(self, tmp_path):
        async def run():
            server = await start_server(tmp_path)
            reader, writer = await asyncio.open_connection(port=server.port)
            frame = bytearray(p.encode_frame(p.OP_PUT, 1, p.encode_put(1, "x")))
            frame[-1] ^= 0xFF  # fails CRC server-side
            writer.write(bytes(frame))
            await writer.drain()
            assert await reader.read(64) == b""  # server hung up on us
            writer.close()
            # ... but the listener still accepts fresh connections.
            async with await IndexClient.connect(port=server.port) as client:
                await client.put(2, "y")
                assert await client.get(2) == "y"
            await server.stop()

        asyncio.run(run())

    def test_sync_client_wrapper(self, tmp_path):
        async def boot():
            return await start_server(tmp_path)

        loop = asyncio.new_event_loop()
        server = loop.run_until_complete(boot())

        async def serve_until_cancelled():
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass

        task = loop.create_task(serve_until_cancelled())
        import threading

        thread = threading.Thread(target=loop.run_until_complete, args=(task,))
        thread.start()
        try:
            with SyncIndexClient(port=server.port) as client:
                client.put(1, "a")
                client.put_many([(2, "b"), (3, "c")])
                assert client.get(2) == "b"
                assert client.get_many([1, 2, 3, 4]) == ["a", "b", "c", None]
                assert client.range_query(1, 3) == [(1, "a"), (2, "b"), (3, "c")]
                client.delete(2)
                assert client.get(2) is None
                assert client.stats()["n_shards"] == 4
        finally:
            loop.call_soon_threadsafe(task.cancel)
            thread.join()
            loop.run_until_complete(server.stop())
            loop.close()


class TestLoadGenerator:
    def test_closed_loop_verifies_against_oracle(self, tmp_path):
        summary = run_load(
            LoadGenConfig(
                clients=4,
                ops_per_client=120,
                shards=4,
                key_space=4000,
                seed=11,
            ),
            root=str(tmp_path / "bench"),
        )
        assert summary["total_ops"] == 480
        assert summary["oracle_checks"] >= 34
        assert summary["ops_per_s"] > 0
        assert summary["server"]["errors"] == 0
        assert set(summary["latency"]) <= {"put", "get", "range", "put_many", "get_many"}

    def test_empty_and_single_sample_buckets(self, tmp_path):
        # Regression: a one-op run leaves most op kinds with empty latency
        # buckets. Those must appear explicitly with null percentiles (not
        # a misleading 0.0, not silently absent), must not raise computing
        # the mean, and the single-sample bucket reports that sample as
        # every percentile.
        summary = run_load(
            LoadGenConfig(
                clients=1,
                ops_per_client=1,
                shards=2,
                key_space=2000,
                seed=13,
            ),
            root=str(tmp_path / "bench"),
        )
        latency = summary["latency"]
        assert set(latency) == {"put", "get", "range", "put_many", "get_many"}
        fired = [kind for kind, stats in latency.items() if stats["n"]]
        assert len(fired) == 1
        for kind, stats in latency.items():
            if stats["n"] == 0:
                assert stats["p50_ns"] is None
                assert stats["p95_ns"] is None
                assert stats["p99_ns"] is None
                assert stats["mean_ns"] is None
            else:
                assert stats["n"] == 1
                assert (
                    stats["p50_ns"]
                    == stats["p95_ns"]
                    == stats["p99_ns"]
                    == stats["mean_ns"]
                )
                assert stats["p50_ns"] > 0

    def test_percentile_helper_edge_cases(self):
        from repro.net.loadgen import _percentile

        assert _percentile([], 0.50) is None
        assert _percentile([], 0.99) is None
        assert _percentile([42], 0.50) == 42.0
        assert _percentile([42], 0.99) == 42.0
        assert _percentile([10, 20], 0.99) == 20.0

    def test_open_loop_runs_to_completion(self, tmp_path):
        summary = run_load(
            LoadGenConfig(
                clients=2,
                ops_per_client=60,
                arrival="open",
                open_rate=4000.0,
                shards=2,
                key_space=2000,
                seed=12,
            ),
            root=str(tmp_path / "bench"),
        )
        assert summary["total_ops"] == 120
        assert summary["oracle_checks"] >= 34
