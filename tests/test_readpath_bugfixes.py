"""Regression tests for the read-path correctness sweep (PR 8).

Three suspected read-path bugs were audited ahead of the sharded serving
layer (whose scatter-gather range path would amplify any of them across
shards). Each test here is the failing-before/passing-after pin for one of
them:

1. **LSM memtable shadowing** (the real bug the sweep found): a direct
   ``delete`` of a key beyond ``max_key`` parks a tombstone in the
   memtable without raising the watermark; a later ``bulk_load_append``
   of that key bypasses the memtable, so the *older* tombstone shadowed
   the *newer* bulk-loaded value on the point-lookup path — ``get`` said
   absent while ``range_query``/``items`` (which resolve by seq) said
   present. Acknowledged writes were unreadable.
2. **Batch query-sort trigger accounting**: ``get_many([])`` and
   ``range_many([])`` fired the query-sort trigger — mutating the buffer
   and charging ``sware_ops`` — where a sequential loop of zero ops does
   nothing; non-empty batches must charge exactly like the loop.
3. **``items()`` scan bounds**: derived from the buffer zonemap and the
   backend watermarks, both of which must stay supersets of the live key
   range across full flush + delete cycles.

Plus the hypothesis property pinning ``_column_cache`` invalidation in the
gapped B+-tree: any mutation interleaved with ``get_many`` must never serve
a stale coalesced column.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.betree.betree import BeTree, BeTreeConfig
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.lsm.lsm import LSMConfig, LSMTree
from repro.storage.costmodel import Meter

HAS_NUMPY = kernels.numpy_available()


def make_index(backend_kind: str, meter=None, **cfg_kw) -> SortednessAwareIndex:
    cfg_kw.setdefault("buffer_capacity", 16)
    cfg_kw.setdefault("page_size", 4)
    cfg = SWAREConfig(**cfg_kw)
    if backend_kind == "btree":
        backend = BPlusTree(BPlusTreeConfig(leaf_capacity=4, internal_capacity=4))
    elif backend_kind == "betree":
        backend = BeTree(BeTreeConfig())
    else:
        backend = LSMTree(LSMConfig())
    return SortednessAwareIndex(backend, cfg, meter=meter)


BACKENDS = ["btree", "betree", "lsm"]


# ----------------------------------------------------------------------
# 1. LSM memtable shadowing of bulk-loaded runs
# ----------------------------------------------------------------------
class TestLSMBulkShadowing:
    def test_bulk_load_after_beyond_max_delete(self):
        """Failing before: the memtable tombstone (older seq) shadowed the
        newer bulk-loaded value because ``get`` trusts the memtable as
        strictly newest."""
        tree = LSMTree(LSMConfig())
        tree.insert(10, "a")  # max_key = 10
        tree.delete(50)  # tombstone straight into the memtable; max_key stays 10
        tree.bulk_load_append([(50, "b")])  # newer seq, bypasses the memtable
        assert tree.get(50) == "b"
        assert tree.range_query(50, 50) == [(50, "b")]
        assert 50 in tree

    def test_point_and_range_paths_agree_through_sware(self):
        """The same schedule through SWARE: delete with an empty buffer goes
        straight to the backend, the re-insert flushes as a bulk load."""
        idx = make_index("lsm", buffer_capacity=8)
        idx.insert(10, "a")
        idx.flush_all()
        idx.delete(50)  # empty buffer -> direct backend tombstone
        idx.insert(50, "b")
        idx.flush_all()  # 50 > tree max -> bulk_load_append
        assert idx.get(50) == "b"
        assert idx.get_many([10, 50]) == ["a", "b"]
        assert idx.items() == [(10, "a"), (50, "b")]

    def test_live_memtable_entries_survive_the_flush(self):
        """The fix flushes the memtable before installing the bulk run; the
        flushed entries must stay readable and newest-wins."""
        tree = LSMTree(LSMConfig())
        tree.insert(10, "a")
        tree.insert(20, "b")
        tree.delete(50)
        tree.bulk_load_append([(50, "c"), (60, "d")])
        assert [tree.get(k) for k in (10, 20, 50, 60)] == ["a", "b", "c", "d"]
        assert tree.range_query(0, 100) == [
            (10, "a"),
            (20, "b"),
            (50, "c"),
            (60, "d"),
        ]

    def test_disjoint_bulk_load_does_not_flush(self):
        """No shadowing risk -> no early flush: the memtable must keep
        absorbing writes when the bulk range misses it entirely."""
        tree = LSMTree(LSMConfig())
        tree.insert(10, "a")
        flushes_before = tree.flushes
        tree.bulk_load_append([(50, "c")])
        assert tree.flushes == flushes_before
        assert tree.get(10) == "a"
        assert tree.get(50) == "c"

    def test_fuzz_get_matches_oracle(self):
        """Randomized schedules of the shadowing shape: interleaved direct
        deletes and bulk-triggering inserts through SWARE vs a dict."""
        import random

        for seed in range(40):
            rng = random.Random(seed)
            idx = make_index("lsm", buffer_capacity=8)
            oracle = {}
            for step in range(120):
                op = rng.random()
                key = rng.randrange(0, 60)
                if op < 0.45:
                    idx.insert(key, (key, step))
                    oracle[key] = (key, step)
                elif op < 0.65:
                    idx.delete(key)
                    oracle.pop(key, None)
                elif op < 0.75:
                    idx.flush_all()
                else:
                    assert idx.get(key) == oracle.get(key), f"seed={seed} step={step}"
            assert sorted(idx.items()) == sorted(oracle.items()), f"seed={seed}"


# ----------------------------------------------------------------------
# 2. Batch query-sort trigger accounting
# ----------------------------------------------------------------------
def _hot_index(meter: Meter) -> SortednessAwareIndex:
    """An index whose unsorted tail is over the query-sort threshold."""
    idx = make_index(
        "btree", meter=meter, buffer_capacity=64, page_size=8, query_sorting_threshold=0.10
    )
    for k in [50, 10, 40, 20, 30, 25, 35, 15, 45, 5, 60, 55]:
        idx.insert(k, k)
    assert idx.buffer.should_query_sort()
    return idx


class TestBatchTriggerEquivalence:
    def test_empty_get_many_is_a_noop(self):
        """Failing before: ``get_many([])`` froze the tail and charged
        sware_ops where a loop of zero gets does nothing."""
        meter = Meter()
        idx = _hot_index(meter)
        tail_before = idx.buffer.tail_size
        assert idx.get_many([]) == []
        assert idx.buffer.tail_size == tail_before
        assert idx.stats.query_sorts == 0
        assert "sware_ops" not in meter.bucket_counts

    def test_empty_range_many_is_a_noop(self):
        meter = Meter()
        idx = _hot_index(meter)
        tail_before = idx.buffer.tail_size
        assert idx.range_many([]) == []
        assert idx.buffer.tail_size == tail_before
        assert idx.stats.query_sorts == 0
        assert "sware_ops" not in meter.bucket_counts

    def test_range_many_meter_equivalent_to_loop(self):
        """One trigger per batch, same charges as the sequential loop."""
        ranges = [(0, 20), (20, 40), (40, 70), (5, 65)]
        m_batch, m_loop = Meter(), Meter()
        idx_batch, idx_loop = _hot_index(m_batch), _hot_index(m_loop)
        res_batch = idx_batch.range_many(ranges)
        res_loop = [idx_loop.range_query(lo, hi) for lo, hi in ranges]
        assert res_batch == res_loop
        assert idx_batch.stats.query_sorts == idx_loop.stats.query_sorts == 1
        assert m_batch.counts == m_loop.counts
        assert m_batch.bucket_counts == m_loop.bucket_counts
        assert idx_batch.stats.range_queries == idx_loop.stats.range_queries

    def test_get_many_meter_equivalent_to_loop(self):
        keys = [5, 10, 99, 25, 60, 42]
        m_batch, m_loop = Meter(), Meter()
        idx_batch, idx_loop = _hot_index(m_batch), _hot_index(m_loop)
        assert idx_batch.get_many(keys) == [idx_loop.get(k) for k in keys]
        assert idx_batch.stats.query_sorts == idx_loop.stats.query_sorts == 1
        # The batch path may coalesce backend probes (tree_search bucket);
        # the trigger charge specifically must match the loop exactly.
        assert m_batch.bucket_counts.get("sware_ops") == m_loop.bucket_counts.get(
            "sware_ops"
        )

    def test_single_trigger_under_tiny_threshold(self):
        meter = Meter()
        idx = make_index(
            "btree", meter=meter, buffer_capacity=64, page_size=8, query_sorting_threshold=0.02
        )
        for k in [50, 10, 40, 20]:
            idx.insert(k, k)
        assert idx.buffer.should_query_sort()
        idx.range_many([(0, 100), (0, 100), (0, 100)])
        assert idx.stats.query_sorts == 1


# ----------------------------------------------------------------------
# 3. items() bounds across flush + delete cycles
# ----------------------------------------------------------------------
class TestItemsBounds:
    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_full_flush_then_delete_cycles(self, backend_kind):
        """Empty buffer + non-empty tree, deletes of the extremes leaving
        stale (superset) watermarks: items() must still see exactly the
        live keys."""
        idx = make_index(backend_kind)
        for k in range(0, 40, 2):
            idx.insert(k, k * 10)
        idx.flush_all()
        assert idx.buffer.is_empty
        # Delete the extremes straight in the tree (buffer is empty, so no
        # tombstones are buffered) — watermarks go stale on both ends.
        for k in (0, 2, 36, 38):
            idx.delete(k)
        live = {k: k * 10 for k in range(4, 36, 2)}
        assert idx.items() == sorted(live.items())
        # Another cycle: refill past the stale bounds, flush, delete again.
        idx.insert(100, 1)
        idx.insert(-100, 2)
        idx.flush_all()
        live[100] = 1
        live[-100] = 2
        idx.delete(100)
        del live[100]
        assert idx.items() == sorted(live.items())

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_empty_buffer_empty_tree_after_deleting_everything(self, backend_kind):
        idx = make_index(backend_kind)
        for k in range(10):
            idx.insert(k, k)
        idx.flush_all()
        for k in range(10):
            idx.delete(k)
        assert idx.items() == []

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_buffered_tombstones_outside_tree_range(self, backend_kind):
        """Buffer zonemap wider than the tree on both sides, holding only a
        mix of tombstones and live keys."""
        idx = make_index(backend_kind)
        for k in (10, 12, 14):
            idx.insert(k, k)
        idx.flush_all()
        idx.insert(5, 50)  # below tree min, stays buffered
        idx.insert(30, 300)  # above tree max, stays buffered
        idx.delete(12)  # in-range buffered tombstone
        idx.delete(5)  # tombstone for a buffered-only key
        assert idx.items() == [(10, 10), (14, 14), (30, 300)]

    def test_fresh_and_fully_empty_index(self):
        idx = make_index("btree")
        assert idx.items() == []
        idx.insert(1, 1)
        idx.delete(1)
        assert idx.items() == []


# ----------------------------------------------------------------------
# 4. Gapped B+-tree column-cache invalidation (hypothesis property)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_NUMPY, reason="the coalesced column cache needs numpy")
class TestColumnCacheInvalidation:
    # Ops: ("insert", k) ("insert_many", [k..]) ("delete", k) ("bulk", n)
    # ("get_many", [k..]) — get_many both *builds* the cache and must never
    # read a stale one.
    ops_st = st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.integers(0, 120)),
            st.tuples(
                st.just("insert_many"),
                st.lists(st.integers(0, 120), min_size=1, max_size=8),
            ),
            st.tuples(st.just("delete"), st.integers(0, 120)),
            st.tuples(st.just("bulk"), st.integers(1, 6)),
            st.tuples(
                st.just("get_many"),
                st.lists(st.integers(0, 200), min_size=1, max_size=8),
            ),
        ),
        min_size=1,
        max_size=40,
    )

    @settings(max_examples=120, deadline=None)
    @given(ops=ops_st)
    def test_get_many_never_serves_stale_columns(self, ops):
        with kernels.use_backend("numpy"):
            tree = BPlusTree(BPlusTreeConfig(leaf_capacity=4, internal_capacity=4))
            oracle = {}
            for op, arg in ops:
                if op == "insert":
                    tree.insert(arg, arg * 7)
                    oracle[arg] = arg * 7
                elif op == "insert_many":
                    tree.insert_many([(k, k * 7) for k in arg])
                    for k in arg:
                        oracle[k] = k * 7
                elif op == "delete":
                    tree.delete(arg)
                    oracle.pop(arg, None)
                elif op == "bulk":
                    start = (tree.max_key if tree.max_key is not None else -1) + 1
                    items = [(start + i, (start + i) * 7) for i in range(arg)]
                    tree.bulk_load_append(items)
                    oracle.update(items)
                else:  # get_many — warms the cache, then must match the oracle
                    want = [oracle.get(k) for k in arg]
                    assert tree.get_many(arg) == want
            probe = sorted(set(oracle) | {0, 1, 199})
            assert tree.get_many(probe) == [oracle.get(k) for k in probe]
            assert sorted(tree.iter_items()) == sorted(oracle.items())

    def test_cache_is_dropped_by_every_mutator(self):
        """Direct pin: warm the cache, mutate through each entry point, and
        check the snapshot is gone before the next batch read."""
        with kernels.use_backend("numpy"):
            tree = BPlusTree(BPlusTreeConfig(leaf_capacity=4, internal_capacity=4))
            tree.insert_many([(k, k) for k in range(20)])

            def warm():
                tree.get_many([3, 7, 11])
                assert tree._column_cache is not None

            warm()
            tree.insert(200, 200)
            assert tree._column_cache is None
            warm()
            tree.insert_many([(250, 250)])
            assert tree._column_cache is None
            warm()
            tree.delete(3)
            assert tree._column_cache is None
            warm()
            tree.bulk_load_append([(300, 300)])
            assert tree._column_cache is None
            # And the reads stay correct after the whole interleaving.
            assert tree.get_many([3, 200, 250, 300]) == [None, 200, 250, 300]

    def test_stale_cache_would_be_caught(self):
        """Meta-test: the property above has teeth — a tree whose delete
        forgets to invalidate serves the stale column and the oracle check
        fails."""
        with kernels.use_backend("numpy"):
            tree = BPlusTree(BPlusTreeConfig(leaf_capacity=4, internal_capacity=4))
            tree.insert_many([(k, k) for k in range(20)])
            tree.get_many([3])  # warm
            snapshot = tree._column_cache
            assert snapshot is not None
            tree.delete(3)
            assert tree._column_cache is None
            # Simulate the forgotten invalidation:
            tree._column_cache = snapshot
            got = tree.get_many([3])
            tree._invalidate_columns()
            # The stale snapshot serves pre-mutation garbage (here: the old
            # column position now maps to a shifted neighbour's value).
            assert got != [None]
            assert tree.get_many([3]) == [None]  # fresh column tells the truth
