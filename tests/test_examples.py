"""Smoke tests: every example script runs to completion on a reduced size.

The examples are real scripts (no test hooks), so we exec them with a
patched ``main``-level size where needed by monkeypatching argv and letting
them run at their built-in sizes — they are already laptop-scale.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 40  # every example reports something


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
