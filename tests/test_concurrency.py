"""Tests for the §IV-D concurrency-control protocol simulation."""

import pytest

from repro.core.concurrency import (
    EXCLUSIVE,
    SHARED,
    LockConflict,
    LockManager,
    SWARELockProtocol,
)
from repro.errors import ReproError


class TestLockManager:
    def test_shared_locks_coexist(self):
        lm = LockManager()
        lm.acquire("a", "r", SHARED)
        lm.acquire("b", "r", SHARED)
        assert lm.holders("r") == {"a", "b"}

    def test_exclusive_excludes(self):
        lm = LockManager()
        lm.acquire("a", "r", EXCLUSIVE)
        with pytest.raises(LockConflict):
            lm.acquire("b", "r", SHARED)
        with pytest.raises(LockConflict):
            lm.acquire("b", "r", EXCLUSIVE)

    def test_shared_blocks_exclusive_from_other(self):
        lm = LockManager()
        lm.acquire("a", "r", SHARED)
        with pytest.raises(LockConflict):
            lm.acquire("b", "r", EXCLUSIVE)

    def test_sole_holder_upgrades(self):
        lm = LockManager()
        lm.acquire("a", "r", SHARED)
        lm.acquire("a", "r", EXCLUSIVE)
        assert lm.mode("r") == EXCLUSIVE

    def test_upgrade_with_other_readers_conflicts(self):
        lm = LockManager()
        lm.acquire("a", "r", SHARED)
        lm.acquire("b", "r", SHARED)
        with pytest.raises(LockConflict):
            lm.acquire("a", "r", EXCLUSIVE)

    def test_release_frees(self):
        lm = LockManager()
        lm.acquire("a", "r", EXCLUSIVE)
        lm.release("a", "r")
        lm.acquire("b", "r", EXCLUSIVE)

    def test_release_unheld_raises(self):
        lm = LockManager()
        with pytest.raises(ReproError):
            lm.release("a", "r")

    def test_release_all(self):
        lm = LockManager()
        lm.acquire("a", "r1", SHARED)
        lm.acquire("a", "r2", EXCLUSIVE)
        lm.release_all("a")
        assert lm.mode("r1") is None
        assert lm.mode("r2") is None

    def test_trace_recorded(self):
        lm = LockManager()
        lm.acquire("a", "r", SHARED)
        lm.release("a", "r")
        assert [event for event, *_ in lm.trace] == ["acquire", "release"]


class TestProtocol:
    def test_append_path_releases_buffer_lock(self):
        protocol = SWARELockProtocol(n_pages=4)
        assert protocol.begin_insert("w1", triggers_flush=False, page=0) == "append"
        # The buffer-wide lock is free again; another worker can append too.
        assert protocol.begin_insert("w2", triggers_flush=False, page=1) == "append"
        protocol.check_invariants()
        protocol.finish_append("w1", 0)
        protocol.finish_append("w2", 1)

    def test_same_page_appends_conflict(self):
        protocol = SWARELockProtocol(n_pages=4)
        protocol.begin_insert("w1", triggers_flush=False, page=2)
        with pytest.raises(LockConflict):
            protocol.begin_insert("w2", triggers_flush=False, page=2)

    def test_flush_blocks_everything(self):
        protocol = SWARELockProtocol(n_pages=4)
        assert protocol.begin_insert("w1", triggers_flush=True, page=0) == "flush"
        with pytest.raises(LockConflict):
            protocol.begin_insert("w2", triggers_flush=False, page=1)
        with pytest.raises(LockConflict):
            protocol.begin_query("reader")
        protocol.check_invariants()
        protocol.finish_flush("w1")
        protocol.begin_query("reader")  # now fine

    def test_queries_share(self):
        protocol = SWARELockProtocol(n_pages=2)
        protocol.begin_query("q1")
        protocol.begin_query("q2")
        protocol.finish_query("q1")
        protocol.finish_query("q2")

    def test_query_blocks_flush_check(self):
        """An insert's instantaneous flush check needs the buffer lock, so
        it must wait for active readers."""
        protocol = SWARELockProtocol(n_pages=2)
        protocol.begin_query("q1")
        with pytest.raises(LockConflict):
            protocol.begin_insert("w1", triggers_flush=False, page=0)

    def test_query_sort_upgrade_requires_sole_reader(self):
        protocol = SWARELockProtocol(n_pages=2)
        protocol.begin_query("q1")
        protocol.begin_query("q2")
        with pytest.raises(LockConflict):
            protocol.upgrade_for_query_sort("q1")
        protocol.finish_query("q2")
        protocol.upgrade_for_query_sort("q1")  # sole reader upgrades
        protocol.finish_query("q1")

    def test_upgrade_requires_active_query(self):
        protocol = SWARELockProtocol(n_pages=2)
        with pytest.raises(ReproError):
            protocol.upgrade_for_query_sort("nobody")

    def test_page_bounds(self):
        protocol = SWARELockProtocol(n_pages=2)
        with pytest.raises(ValueError):
            protocol.begin_insert("w", triggers_flush=False, page=5)

    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            SWARELockProtocol(n_pages=0)

    def test_full_schedule(self):
        """A representative interleaving runs clean end to end."""
        protocol = SWARELockProtocol(n_pages=4)
        protocol.begin_insert("w1", triggers_flush=False, page=0)
        protocol.check_invariants()
        protocol.finish_append("w1", 0)
        protocol.begin_query("q1")
        protocol.finish_query("q1")
        protocol.begin_insert("w1", triggers_flush=True, page=0)
        protocol.check_invariants()
        protocol.finish_flush("w1")
        protocol.begin_query("q1")
        protocol.upgrade_for_query_sort("q1")
        protocol.check_invariants()
        protocol.finish_query("q1")
