"""Unit tests for the B+-tree substrate."""

import pytest

from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.errors import BulkLoadError, ConfigError
from repro.storage.costmodel import Meter


def small_tree(**overrides) -> BPlusTree:
    config = BPlusTreeConfig(
        leaf_capacity=overrides.pop("leaf_capacity", 4),
        internal_capacity=overrides.pop("internal_capacity", 4),
        **overrides,
    )
    return BPlusTree(config, meter=Meter())


class TestConfig:
    def test_rejects_tiny_capacities(self):
        with pytest.raises(ConfigError):
            BPlusTreeConfig(leaf_capacity=1)
        with pytest.raises(ConfigError):
            BPlusTreeConfig(internal_capacity=1)

    def test_rejects_extreme_split_factor(self):
        with pytest.raises(ConfigError):
            BPlusTreeConfig(split_factor=0.05)
        with pytest.raises(ConfigError):
            BPlusTreeConfig(split_factor=0.95)

    def test_rejects_bad_fill_factor(self):
        with pytest.raises(ConfigError):
            BPlusTreeConfig(bulk_fill_factor=1.5)


class TestBasicOperations:
    def test_empty_tree(self):
        tree = small_tree()
        assert tree.get(1) is None
        assert len(tree) == 0
        assert tree.max_key is None
        assert tree.min_key is None
        assert tree.range_query(0, 100) == []

    def test_single_insert(self):
        tree = small_tree()
        assert tree.insert(5, "five") is True
        assert tree.get(5) == "five"
        assert tree.max_key == tree.min_key == 5

    def test_upsert_overwrites(self):
        tree = small_tree()
        tree.insert(5, "a")
        assert tree.insert(5, "b") is False
        assert tree.get(5) == "b"
        assert len(tree) == 1

    def test_many_inserts_random_order(self):
        tree = small_tree()
        import random

        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert len(tree) == 500
        assert all(tree.get(key) == key * 2 for key in range(500))
        assert tree.get(500) is None
        assert tree.min_key == 0
        assert tree.max_key == 499

    def test_contains(self):
        tree = small_tree()
        tree.insert(1, "x")
        assert 1 in tree
        assert 2 not in tree

    def test_height_grows(self):
        tree = small_tree()
        for key in range(100):
            tree.insert(key, key)
        assert tree.height >= 3
        tree.check_invariants()

    def test_iter_items_sorted(self):
        tree = small_tree()
        for key in (5, 1, 9, 3):
            tree.insert(key, key)
        assert list(tree.iter_items()) == [(1, 1), (3, 3), (5, 5), (9, 9)]


class TestRangeQueries:
    def make(self):
        tree = small_tree()
        for key in range(0, 100, 2):
            tree.insert(key, key)
        return tree

    def test_inclusive_bounds(self):
        tree = self.make()
        assert tree.range_query(10, 14) == [(10, 10), (12, 12), (14, 14)]

    def test_bounds_between_keys(self):
        tree = self.make()
        assert tree.range_query(9, 15) == [(10, 10), (12, 12), (14, 14)]

    def test_empty_range(self):
        tree = self.make()
        assert tree.range_query(11, 11) == []
        assert tree.range_query(50, 40) == []

    def test_full_range(self):
        tree = self.make()
        assert len(tree.range_query(-100, 1000)) == 50

    def test_crosses_leaves(self):
        tree = self.make()
        result = tree.range_query(0, 98)
        assert [key for key, _ in result] == list(range(0, 100, 2))


class TestDeletes:
    def test_delete_present(self):
        tree = small_tree()
        tree.insert(1, "a")
        assert tree.delete(1) is True
        assert tree.get(1) is None
        assert len(tree) == 0

    def test_delete_absent(self):
        tree = small_tree()
        tree.insert(1, "a")
        assert tree.delete(2) is False
        assert len(tree) == 1

    def test_minmax_are_watermarks_after_delete(self):
        """Deletes must not shrink the bounds: a later bulk load keyed off
        max_key would otherwise append left of the right-most separator."""
        tree = small_tree()
        for key in (1, 5, 9):
            tree.insert(key, key)
        tree.delete(9)
        assert tree.max_key == 9
        tree.delete(1)
        assert tree.min_key == 1
        # The watermark keeps bulk loading safe.
        import pytest as _pytest

        from repro.errors import BulkLoadError

        with _pytest.raises(BulkLoadError):
            tree.bulk_load_append([(7, 7)])
        tree.bulk_load_append([(10, 10)])
        tree.check_invariants()

    def test_delete_max_then_bulk_regression(self):
        """Regression for the stateful-machine finding: delete the max,
        insert a key just below it, bulk load — routing must hold."""
        tree = small_tree(leaf_capacity=4, internal_capacity=4)
        tree.insert(5, 5)
        for key in range(4):
            tree.insert(key, key)
        tree.delete(5)
        tree.insert(4, 4)
        tree.check_invariants()
        tree.bulk_load_append([(10, 10), (11, 11)])
        tree.check_invariants()
        assert tree.get(4) == 4
        assert tree.get(10) == 10

    def test_delete_everything_then_reinsert(self):
        tree = small_tree()
        for key in range(100):
            tree.insert(key, key)
        for key in range(100):
            assert tree.delete(key)
        assert len(tree) == 0
        tree.check_invariants()
        for key in range(50):
            tree.insert(key, key + 1)
        tree.check_invariants()
        assert all(tree.get(key) == key + 1 for key in range(50))

    def test_range_skips_deleted(self):
        tree = small_tree()
        for key in range(20):
            tree.insert(key, key)
        for key in range(0, 20, 2):
            tree.delete(key)
        assert tree.range_query(0, 19) == [(k, k) for k in range(1, 20, 2)]


class TestSplitFactor:
    def test_ascending_fill_factor_improves_with_split_factor(self):
        """The §III claim: right-leaning splits raise average leaf fill for
        sorted ingestion."""
        fills = {}
        for factor in (0.5, 0.8):
            tree = small_tree(leaf_capacity=8, internal_capacity=8, split_factor=factor)
            for key in range(1000):
                tree.insert(key, key)
            tree.check_invariants()
            fills[factor] = tree.space_stats()["avg_leaf_fill"]
        assert fills[0.8] > fills[0.5]

    def test_ascending_splits_decrease_with_split_factor(self):
        splits = {}
        for factor in (0.5, 0.8):
            tree = small_tree(leaf_capacity=8, internal_capacity=8, split_factor=factor)
            for key in range(1000):
                tree.insert(key, key)
            splits[factor] = tree.leaf_splits
        assert splits[0.8] < splits[0.5]


class TestTailLeafFastPath:
    def test_fastpath_counts(self):
        tree = small_tree(tail_leaf_optimization=True)
        for key in range(100):
            tree.insert(key, key)
        # All but the very first insert land via the tail-leaf pointer.
        assert tree.fastpath_inserts >= 90
        tree.check_invariants()

    def test_fastpath_disabled_by_default(self):
        tree = small_tree()
        for key in range(100):
            tree.insert(key, key)
        assert tree.fastpath_inserts == 0

    def test_fastpath_equivalent_results(self):
        import random

        keys = list(range(400))
        random.Random(1).shuffle(keys)
        with_fp = small_tree(tail_leaf_optimization=True)
        without = small_tree(tail_leaf_optimization=False)
        for key in keys:
            with_fp.insert(key, key)
            without.insert(key, key)
        assert list(with_fp.iter_items()) == list(without.iter_items())
        with_fp.check_invariants()

    def test_fastpath_cheaper_for_sorted(self):
        meter_fp = Meter()
        meter_plain = Meter()
        fp = BPlusTree(
            BPlusTreeConfig(leaf_capacity=8, internal_capacity=8, tail_leaf_optimization=True),
            meter=meter_fp,
        )
        plain = BPlusTree(
            BPlusTreeConfig(leaf_capacity=8, internal_capacity=8),
            meter=meter_plain,
        )
        for key in range(2000):
            fp.insert(key, key)
            plain.insert(key, key)
        assert meter_fp["node_access"] < meter_plain["node_access"] / 2


class TestBulkLoad:
    def test_bulk_into_empty(self):
        tree = small_tree()
        tree.bulk_load_append([(k, k) for k in range(100)])
        tree.check_invariants()
        assert len(tree) == 100
        assert all(tree.get(k) == k for k in range(100))

    def test_bulk_appends_after_inserts(self):
        tree = small_tree()
        for key in range(50):
            tree.insert(key, key)
        tree.bulk_load_append([(k, k) for k in range(50, 150)])
        tree.check_invariants()
        assert len(tree) == 150
        assert all(tree.get(k) == k for k in range(150))

    def test_bulk_rejects_overlap(self):
        tree = small_tree()
        tree.insert(100, 100)
        with pytest.raises(BulkLoadError):
            tree.bulk_load_append([(100, 0), (101, 0)])

    def test_bulk_rejects_unsorted_batch(self):
        tree = small_tree()
        with pytest.raises(BulkLoadError):
            tree.bulk_load_append([(2, 0), (1, 0)])

    def test_bulk_rejects_duplicate_in_batch(self):
        tree = small_tree()
        with pytest.raises(BulkLoadError):
            tree.bulk_load_append([(1, 0), (1, 0)])

    def test_bulk_empty_batch_noop(self):
        tree = small_tree()
        tree.bulk_load_append([])
        assert len(tree) == 0

    def test_alternating_bulk_and_inserts(self):
        tree = small_tree()
        expected = {}
        next_key = 0
        for round_index in range(20):
            batch = [(next_key + i, round_index) for i in range(13)]
            tree.bulk_load_append(batch)
            expected.update(dict(batch))
            next_key += 13
            # Insert a few overlapping keys through the root.
            for key in range(max(0, next_key - 30), next_key - 20):
                tree.insert(key, -round_index)
                expected[key] = -round_index
        tree.check_invariants()
        assert dict(tree.iter_items()) == expected

    def test_bulk_fill_factor_respected(self):
        tree = small_tree(leaf_capacity=10, bulk_fill_factor=0.5)
        tree.bulk_load_append([(k, k) for k in range(100)])
        stats = tree.space_stats()
        # Leaves filled to ~50%, never above.
        assert stats["avg_leaf_fill"] <= 0.55
        tree.check_invariants()

    def test_bulk_cheaper_than_inserts(self):
        meter_bulk = Meter()
        bulk_tree = BPlusTree(BPlusTreeConfig(leaf_capacity=8, internal_capacity=8), meter=meter_bulk)
        bulk_tree.bulk_load_append([(k, k) for k in range(1000)])
        meter_ins = Meter()
        ins_tree = BPlusTree(BPlusTreeConfig(leaf_capacity=8, internal_capacity=8), meter=meter_ins)
        for key in range(1000):
            ins_tree.insert(key, key)
        from repro.storage.costmodel import CostModel

        model = CostModel()
        assert meter_bulk.nanos(model) < meter_ins.nanos(model) / 3


class TestSpaceStats:
    def test_counts_consistent(self):
        tree = small_tree()
        for key in range(200):
            tree.insert(key, key)
        stats = tree.space_stats()
        assert stats["entries"] == 200
        assert stats["leaf_count"] * 4 == stats["leaf_slots"]
        assert 0 < stats["avg_leaf_fill"] <= 1.0


class TestMeterAccounting:
    def test_node_access_charged_on_get(self):
        meter = Meter()
        tree = BPlusTree(BPlusTreeConfig(leaf_capacity=4, internal_capacity=4), meter=meter)
        for key in range(100):
            tree.insert(key, key)
        before = meter["node_access"]
        tree.get(50)
        assert meter["node_access"] - before == tree.height
