"""Tests for the deterministic fault-injection harness itself.

The crash-recovery acceptance suite (test_recovery.py) only means something
if the harness actually kills the process at the scheduled boundary, leaves
deterministic wreckage, and keeps the corpse dead — so those properties are
pinned here.
"""

import os

import pytest

from repro.storage.faults import FaultyEnv, SimulatedCrash


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "victim.bin")


class TestCrashScheduling:
    def test_crash_at_exact_write(self, path):
        env = FaultyEnv(crash_at=2, seed=0)
        fobj = env.open(path, "w+b")
        fobj.write(b"one")  # op 0
        fobj.write(b"two")  # op 1
        with pytest.raises(SimulatedCrash):
            fobj.write(b"three")  # op 2: boom
        assert env.crashed

    def test_no_crash_when_point_beyond_run(self, path):
        env = FaultyEnv(crash_at=100, seed=0)
        fobj = env.open(path, "w+b")
        for _ in range(10):
            fobj.write(b"data")
        fobj.close()
        assert not env.crashed

    def test_none_never_crashes(self, path):
        env = FaultyEnv(crash_at=None, seed=0)
        fobj = env.open(path, "w+b")
        for _ in range(50):
            fobj.write(b"data")
            fobj.flush()
        fobj.close()
        assert env.ops == 100

    def test_flush_fsync_truncate_are_boundaries(self, path):
        for method, crash_at in (("flush", 1), ("fsync", 1), ("truncate", 1)):
            env = FaultyEnv(crash_at=crash_at, seed=0)
            fobj = env.open(path, "w+b")
            fobj.write(b"data")  # op 0
            with pytest.raises(SimulatedCrash):
                getattr(fobj, method)()  # op 1

    def test_crash_before_replace_leaves_dst(self, tmp_path):
        src = str(tmp_path / "src")
        dst = str(tmp_path / "dst")
        with open(src, "wb") as handle:
            handle.write(b"new")
        with open(dst, "wb") as handle:
            handle.write(b"old")
        env = FaultyEnv(crash_at=0, seed=0)
        with pytest.raises(SimulatedCrash):
            env.replace(src, dst)
        with open(dst, "rb") as handle:
            assert handle.read() == b"old"  # the rename never happened


class TestWreckage:
    def test_torn_write_persists_strict_prefix(self, path):
        env = FaultyEnv(crash_at=0, seed=7)
        fobj = env.open(path, "w+b")
        with pytest.raises(SimulatedCrash):
            fobj.write(b"x" * 1000)
        fobj.close()
        size = os.path.getsize(path)
        assert 0 <= size < 1000  # never the full write

    def test_determinism(self, tmp_path):
        sizes = []
        for run in range(2):
            path = str(tmp_path / f"run{run}.bin")
            env = FaultyEnv(crash_at=3, seed=42)
            fobj = env.open(path, "w+b")
            try:
                for i in range(10):
                    fobj.write(bytes([i]) * 100)
            except SimulatedCrash:
                pass
            fobj.close()
            sizes.append(os.path.getsize(path))
            with open(path, "rb") as handle:
                data = handle.read()
            if run == 0:
                first = data
        assert sizes[0] == sizes[1]
        assert data == first

    def test_dead_env_stays_dead(self, path):
        env = FaultyEnv(crash_at=0, seed=0)
        fobj = env.open(path, "w+b")
        with pytest.raises(SimulatedCrash):
            fobj.write(b"data")
        with pytest.raises(SimulatedCrash):
            fobj.write(b"more")
        with pytest.raises(SimulatedCrash):
            fobj.seek(0)
        with pytest.raises(SimulatedCrash):
            env.open(path, "rb")
        fobj.close()  # cleanup is always allowed


class TestShortReads:
    def test_short_read_at_index(self, path):
        with open(path, "wb") as handle:
            handle.write(b"a" * 100)
        env = FaultyEnv(seed=5, short_read_at=1)
        fobj = env.open(path, "rb")
        assert fobj.read(50) == b"a" * 50  # read 0: full
        short = fobj.read(50)  # read 1: shortened
        assert len(short) < 50
        fobj.close()
