"""Tests for the simulated bufferpool and page allocator."""

import pytest

from repro.errors import BufferpoolFullError, PinViolationError, ReproError
from repro.storage.bufferpool import BufferPool, PageIdAllocator
from repro.storage.costmodel import CostModel, Meter


class TestPageIdAllocator:
    def test_monotonic_unique(self):
        alloc = PageIdAllocator()
        ids = [alloc.allocate() for _ in range(10)]
        assert ids == list(range(10))


class TestUnboundedPool:
    def test_first_access_misses_then_hits(self):
        pool = BufferPool()
        assert pool.access(1) is False
        assert pool.access(1) is True
        assert pool.misses == 1
        assert pool.hits == 1

    def test_create_avoids_read(self):
        pool = BufferPool()
        pool.create(1)
        assert pool.disk_reads == 0
        assert pool.access(1) is True


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        pool = BufferPool(capacity=2)
        pool.access(1)
        pool.access(2)
        pool.access(1)  # 2 is now LRU
        pool.access(3)  # evicts 2
        assert pool.access(1) is True
        assert pool.access(2) is False  # was evicted

    def test_dirty_eviction_writes_back(self):
        meter = Meter()
        pool = BufferPool(capacity=1, meter=meter)
        pool.access(1, dirty=True)
        pool.access(2)  # evicts dirty page 1
        assert pool.disk_writes == 1
        assert meter["disk_write"] == 1

    def test_clean_eviction_free(self):
        pool = BufferPool(capacity=1)
        pool.access(1)
        pool.access(2)
        assert pool.disk_writes == 0
        assert pool.evictions == 1

    def test_capacity_respected(self):
        pool = BufferPool(capacity=3)
        for page in range(10):
            pool.access(page)
        assert pool.resident == 3


class TestPinning:
    def test_pinned_pages_survive(self):
        pool = BufferPool(capacity=2)
        pool.pin(1)
        pool.access(2)
        pool.access(3)  # must evict 2, not pinned 1
        assert pool.access(1) is True

    def test_all_pinned_raises(self):
        pool = BufferPool(capacity=1)
        pool.pin(1)
        with pytest.raises(BufferpoolFullError):
            pool.access(2)

    def test_unpin_allows_eviction(self):
        pool = BufferPool(capacity=1)
        pool.pin(1)
        pool.unpin(1)
        pool.access(2)
        assert pool.access(1) is False

    def test_unpin_unpinned_raises(self):
        pool = BufferPool()
        with pytest.raises(PinViolationError):
            pool.unpin(1)

    def test_unpin_error_is_repro_error(self):
        """Regression: unpin misuse must be catchable as ReproError (it used
        to raise a bare ValueError outside the library hierarchy)."""
        pool = BufferPool()
        with pytest.raises(ReproError):
            pool.unpin(1)
        # Backward compatibility: still a ValueError for old callers.
        with pytest.raises(ValueError):
            pool.unpin(1)

    def test_drop_pinned_raises(self):
        """Regression: dropping a pinned frame used to silently discard it,
        corrupting pin accounting (the later unpin then raised)."""
        pool = BufferPool()
        pool.pin(1)
        with pytest.raises(PinViolationError):
            pool.drop(1)
        # The frame survived; pin accounting is intact.
        assert pool.resident == 1
        pool.unpin(1)
        pool.drop(1)  # unpinned now: drop succeeds
        assert pool.resident == 0

    def test_drop_absent_is_noop(self):
        pool = BufferPool()
        pool.drop(99)  # never raises for unknown pages


class TestDropAndFlush:
    def test_drop_removes(self):
        pool = BufferPool()
        pool.access(1)
        pool.drop(1)
        assert pool.resident == 0

    def test_flush_all_writes_dirty_only(self):
        pool = BufferPool()
        pool.access(1, dirty=True)
        pool.access(2)
        assert pool.flush_all() == 1
        assert pool.flush_all() == 0  # now clean


class TestAccounting:
    def test_meter_charged_on_miss(self):
        meter = Meter()
        pool = BufferPool(capacity=4, meter=meter)
        pool.access(1)
        pool.access(1)
        assert meter["disk_read"] == 1

    def test_hit_rate(self):
        pool = BufferPool()
        pool.access(1)
        pool.access(1)
        pool.access(1)
        assert pool.hit_rate == pytest.approx(2 / 3)

    def test_stats_snapshot(self):
        pool = BufferPool(capacity=8)
        pool.access(1)
        stats = pool.stats()
        assert stats["misses"] == 1
        assert stats["capacity"] == 8

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=-1)


class TestTreeIntegration:
    def test_btree_with_tiny_pool_counts_io(self):
        from repro.btree.btree import BPlusTree, BPlusTreeConfig

        meter = Meter()
        pool = BufferPool(capacity=4, meter=meter)
        tree = BPlusTree(
            BPlusTreeConfig(leaf_capacity=4, internal_capacity=4), meter=meter, pool=pool
        )
        import random

        keys = list(range(300))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        assert pool.disk_reads > 0
        assert pool.disk_writes > 0
        # Simulated time is dominated by I/O under the default weights.
        model = CostModel()
        assert model.cost("disk_read", meter["disk_read"]) > model.cost(
            "node_access", meter["node_access"]
        )

    def test_generous_pool_has_no_reads_after_creation(self):
        from repro.btree.btree import BPlusTree, BPlusTreeConfig

        meter = Meter()
        pool = BufferPool(capacity=10_000, meter=meter)
        tree = BPlusTree(
            BPlusTreeConfig(leaf_capacity=8, internal_capacity=8), meter=meter, pool=pool
        )
        for key in range(500):
            tree.insert(key, key)
        for key in range(500):
            tree.get(key)
        # Every page was created in the pool and never evicted.
        assert pool.disk_reads == 0
