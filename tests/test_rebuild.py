"""Offline rebuild pipeline: equivalence, fast-path routing, crash hygiene.

The rebuild pipeline must be *observationally identical* to incremental
recovery — same live items from the same checkpoint + WAL tail, whatever
mix of inserts, updates, and deletes the tail holds — and crash-safe: a
simulated crash at any I/O boundary during ``repro rebuild`` leaves the
original checkpoint loadable, and stray ``*.tmp`` wreckage is removed by
the next ``recover``/``rebuild``. ``LSMTree.compact()`` rides the same
merge and must preserve the live item set while collapsing to one run.
"""

import os
import random

import pytest

from repro.btree.btree import BPlusTree
from repro.core.sware import SortednessAwareIndex
from repro.lsm.lsm import LSMConfig, LSMTree
from repro.storage import (
    CheckpointStore,
    FaultyEnv,
    SimulatedCrash,
    WriteAheadLog,
    rebuild_index,
)
from repro.storage.rebuild import checkpoint_run, wal_run


def _seeded_state(workdir, n=4000, tail=1500, seed=11):
    """Checkpoint ``n`` keys then log a mixed tail; returns paths + truth."""
    ckpt = os.path.join(workdir, "ck.db")
    walp = os.path.join(workdir, "wal.log")
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(10_000_000), n))
    wal = WriteAheadLog(walp)
    index = SortednessAwareIndex(BPlusTree(), wal=wal)
    for key in keys:
        index.insert(key, f"v{key}")
    CheckpointStore(ckpt).save_index(index)
    wal.reset()
    for _ in range(tail):
        roll = rng.random()
        if roll < 0.2:
            key = rng.choice(keys)
            index.delete(key)
        elif roll < 0.6:
            key = rng.choice(keys)
            index.insert(key, f"u{key}")
        else:
            key = rng.randrange(10_000_000, 11_000_000)
            index.insert(key, f"n{key}")
    wal.sync()
    wal.close()
    return ckpt, walp, dict(index.items())


class TestRebuildEquivalence:
    def test_matches_incremental_recovery(self, tmp_path):
        ckpt, walp, expected = _seeded_state(str(tmp_path))
        incremental, _ = CheckpointStore(ckpt).recover(walp)
        rebuilt, report = rebuild_index(ckpt, walp)
        assert dict(incremental.items()) == expected
        assert dict(rebuilt.items()) == expected
        rebuilt.backend.check_invariants()
        assert report.entries == len(expected)
        assert report.wal_records == 1500

    def test_rebuild_without_wal(self, tmp_path):
        ckpt, _walp, _expected = _seeded_state(str(tmp_path), tail=0)
        rebuilt, report = rebuild_index(ckpt)
        loaded = CheckpointStore(ckpt).load_btree()
        assert rebuilt.backend.n_entries == loaded.n_entries
        assert report.wal_records == 0

    def test_out_path_checkpoint_loads_identically(self, tmp_path):
        ckpt, walp, expected = _seeded_state(str(tmp_path))
        out = str(tmp_path / "rebuilt.db")
        _index, report = rebuild_index(ckpt, walp, out_path=out)
        assert report.out_path == out
        recovered, _ = CheckpointStore(out).recover()
        assert dict(recovered.items()) == expected

    def test_recover_threshold_routes_to_rebuild(self, tmp_path):
        ckpt, walp, expected = _seeded_state(str(tmp_path))
        fast, report = CheckpointStore(ckpt).recover(walp, rebuild_threshold=100)
        assert report.rebuilt
        assert "rebuild fast path" in report.describe()
        assert dict(fast.items()) == expected

    def test_recover_below_threshold_replays(self, tmp_path):
        ckpt, walp, expected = _seeded_state(str(tmp_path))
        slow, report = CheckpointStore(ckpt).recover(
            walp, rebuild_threshold=10_000_000
        )
        assert not report.rebuilt
        assert dict(slow.items()) == expected

    def test_v1_checkpoint_rebuilds(self, tmp_path):
        """The run streamer handles raw (uncompressed) leaf pages too."""
        ckpt = str(tmp_path / "v1.db")
        walp = str(tmp_path / "wal.log")
        index = SortednessAwareIndex(BPlusTree(), wal=WriteAheadLog(walp))
        for key in range(0, 3000, 3):
            index.insert(key, key)
        CheckpointStore(ckpt, compress=False).save_index(index)
        index.wal.reset()
        for key in range(1, 3001, 30):
            index.insert(key, -key)
        index.wal.sync()
        expected = dict(index.items())
        rebuilt, _ = rebuild_index(ckpt, walp)
        assert dict(rebuilt.items()) == expected


class TestRunStreaming:
    def test_checkpoint_run_keeps_pages_encoded(self, tmp_path):
        ckpt = str(tmp_path / "ck.db")
        index = SortednessAwareIndex(BPlusTree())
        for key in range(10_000, 20_000, 2):
            index.insert(key, 0)
        CheckpointStore(ckpt).save_index(index)
        run, directory, epoch = checkpoint_run(ckpt)
        assert epoch == 1
        assert directory.get("page_format") == 2
        assert run.count == 5000
        # Dense even keys: every multi-key page must have arrived as a
        # still-encoded delta block, never eagerly decoded.
        assert any(page._keys is None for page in run.pages)
        run.check_invariants()

    def test_wal_run_last_op_per_key(self, tmp_path):
        walp = str(tmp_path / "wal.log")
        wal = WriteAheadLog(walp)
        wal.append_put(5, "first")
        wal.append_put(5, "second")
        wal.append_delete(9)
        wal.append_put(9, "alive")
        wal.append_put(1, "x")
        wal.append_delete(1)
        wal.sync()
        run, replay = wal_run(walp)
        assert replay.records == 6
        items = list(run.items())
        assert items == [(1, None, True), (5, "second", False), (9, "alive", False)]


class TestCrashHygiene:
    def test_crash_during_out_checkpoint_preserves_source(self, tmp_path):
        """Sweep every I/O boundary of the --out save: the source checkpoint
        must stay loadable and the rebuilt output must never be half-visible."""
        ckpt, walp, expected = _seeded_state(str(tmp_path), n=800, tail=300)
        out = str(tmp_path / "out.db")
        crashed_at_least_once = False
        for crash_at in range(60):
            env = FaultyEnv(crash_at=crash_at, seed=crash_at)
            try:
                rebuild_index(
                    ckpt, walp, out_path=out,
                    opener=env.open, replace=env.replace,
                )
            except SimulatedCrash:
                crashed_at_least_once = True
            # Whatever happened, the inputs are intact…
            recovered, _ = CheckpointStore(ckpt).recover(walp)
            assert dict(recovered.items()) == expected
            # …and the output path is all-or-nothing.
            if os.path.exists(out):
                out_recovered, _ = CheckpointStore(out).recover()
                assert dict(out_recovered.items()) == expected
                os.unlink(out)
            for stray in (ckpt + ".tmp", out + ".tmp"):
                if os.path.exists(stray):
                    os.unlink(stray)
        assert crashed_at_least_once

    def test_stale_tmp_cleaned_by_next_rebuild(self, tmp_path):
        ckpt, walp, expected = _seeded_state(str(tmp_path), n=500, tail=100)
        for stale in (ckpt + ".tmp", str(tmp_path / "out.db.tmp")):
            with open(stale, "wb") as handle:
                handle.write(b"wreckage from a crashed save")
        rebuilt, report = rebuild_index(
            ckpt, walp, out_path=str(tmp_path / "out.db")
        )
        assert report.stale_tmp_removed
        assert not os.path.exists(ckpt + ".tmp")
        assert not os.path.exists(str(tmp_path / "out.db.tmp"))
        assert dict(rebuilt.items()) == expected

    def test_stale_tmp_cleaned_by_recover_fast_path(self, tmp_path):
        ckpt, walp, expected = _seeded_state(str(tmp_path), n=500, tail=200)
        with open(ckpt + ".tmp", "wb") as handle:
            handle.write(b"torn checkpoint bytes")
        index, report = CheckpointStore(ckpt).recover(walp, rebuild_threshold=50)
        assert report.rebuilt and report.stale_tmp_removed
        assert not os.path.exists(ckpt + ".tmp")
        assert dict(index.items()) == expected

    def test_first_crash_leaves_only_tmp_wreckage(self, tmp_path):
        """The earliest possible crash (first mutating op, a torn write of
        the output's tmp file) leaves nothing but ``*.tmp`` behind — never
        a half-written file at the destination path itself — and the next
        clean rebuild sweeps it."""
        ckpt, walp, expected = _seeded_state(str(tmp_path), n=500, tail=200)
        out = str(tmp_path / "out.db")
        before = set(os.listdir(tmp_path))
        env = FaultyEnv(crash_at=0, seed=3)
        with pytest.raises(SimulatedCrash):
            rebuild_index(
                ckpt, walp, out_path=out, opener=env.open, replace=env.replace
            )
        new_files = set(os.listdir(tmp_path)) - before
        assert all(name.endswith(".tmp") for name in new_files)
        rebuilt, report = rebuild_index(ckpt, walp, out_path=out)
        assert report.stale_tmp_removed
        assert set(os.listdir(tmp_path)) - before == {"out.db"}
        assert dict(rebuilt.items()) == expected


class TestLSMCompact:
    @pytest.mark.parametrize("policy", ["leveling", "tiering"])
    @pytest.mark.parametrize("sortedness_aware", [False, True])
    def test_compact_preserves_live_items(self, policy, sortedness_aware):
        tree = LSMTree(
            LSMConfig(
                memtable_capacity=32,
                policy=policy,
                sortedness_aware=sortedness_aware,
            )
        )
        rng = random.Random(5)
        live = {}
        for i in range(3000):
            key = rng.randrange(8000)
            if rng.random() < 0.15:
                tree.delete(key)
                live.pop(key, None)
            else:
                tree.insert(key, i)
                live[key] = i
        stats = tree.compact()
        tree.check_invariants()
        assert dict(tree.iter_items()) == live
        assert tree.n_runs() <= 1
        assert stats["merged"]
        assert stats["entries_out"] == len(live)

    def test_compact_idempotent(self):
        tree = LSMTree(LSMConfig(memtable_capacity=16))
        for key in range(500):
            tree.insert(key, key)
        tree.compact()
        live = dict(tree.iter_items())
        written_before = tree.entries_written
        stats = tree.compact()
        assert not stats["merged"]  # single tombstone-free run: no-op
        assert tree.entries_written == written_before
        assert dict(tree.iter_items()) == live

    def test_compact_drops_tombstones(self):
        tree = LSMTree(LSMConfig(memtable_capacity=8))
        for key in range(200):
            tree.insert(key, key)
        for key in range(0, 200, 2):
            tree.delete(key)
        tree.compact()
        entries = [e for run in tree._iter_runs() for e in run.entries]
        assert entries and not any(e[3] for e in entries)
        assert dict(tree.iter_items()) == {k: k for k in range(1, 200, 2)}
