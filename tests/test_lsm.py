"""Tests for the LSM-tree substrate (extension §VI)."""

import random

import pytest

from repro.errors import BulkLoadError, ConfigError
from repro.lsm import LEVELING, TIERING, LSMConfig, LSMTree, SortedRun
from repro.storage.costmodel import Meter


def make_tree(**overrides) -> LSMTree:
    config = LSMConfig(
        memtable_capacity=overrides.pop("memtable_capacity", 16),
        size_ratio=overrides.pop("size_ratio", 3),
        **overrides,
    )
    return LSMTree(config, meter=Meter())


class TestConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            LSMConfig(memtable_capacity=1)
        with pytest.raises(ConfigError):
            LSMConfig(size_ratio=1)
        with pytest.raises(ConfigError):
            LSMConfig(policy="lazy")

    def test_level_capacities_grow_geometrically(self):
        config = LSMConfig(memtable_capacity=10, size_ratio=4)
        assert config.level_capacity(0) == 40
        assert config.level_capacity(1) == 160


class TestSortedRun:
    def test_get_and_slice(self):
        run = SortedRun([(1, 1, "a", False), (3, 2, "b", False), (5, 3, "c", False)])
        assert run.get(3)[2] == "b"
        assert run.get(2) is None
        assert [e[0] for e in run.slice(2, 5)] == [3, 5]

    def test_overlap(self):
        a = SortedRun([(1, 1, None, False), (5, 2, None, False)])
        b = SortedRun([(6, 3, None, False), (9, 4, None, False)])
        c = SortedRun([(4, 5, None, False), (7, 6, None, False)])
        assert not a.overlaps(b)
        assert a.overlaps(c) and c.overlaps(b)

    def test_empty_run(self):
        run = SortedRun([])
        assert len(run) == 0
        assert run.get(1) is None
        assert not run.overlaps(SortedRun([(1, 1, None, False)]))

    def test_duplicates_newest_wins(self):
        run = SortedRun([(2, 1, "old", False), (2, 7, "new", False)])
        assert run.get(2)[2] == "new"


class TestBasicOperations:
    def test_memtable_hit(self):
        tree = make_tree()
        tree.insert(5, "x")
        assert tree.get(5) == "x"
        assert tree.flushes == 0

    def test_flush_and_read_from_run(self):
        tree = make_tree(memtable_capacity=4)
        for key in range(10):
            tree.insert(key, key)
        assert tree.flushes >= 2
        assert all(tree.get(key) == key for key in range(10))

    def test_upsert_across_runs(self):
        tree = make_tree(memtable_capacity=4)
        for key in range(8):
            tree.insert(key, "old")
        for key in range(8):
            tree.insert(key, "new")
        assert all(tree.get(key) == "new" for key in range(8))

    def test_delete(self):
        tree = make_tree(memtable_capacity=4)
        for key in range(12):
            tree.insert(key, key)
        tree.delete(5)
        assert tree.get(5) is None
        assert tree.get(6) == 6

    def test_range_query(self):
        tree = make_tree(memtable_capacity=4)
        for key in range(20):
            tree.insert(key, key * 10)
        tree.delete(7)
        result = tree.range_query(5, 9)
        assert result == [(5, 50), (6, 60), (8, 80), (9, 90)]

    @pytest.mark.parametrize("policy", [LEVELING, TIERING])
    @pytest.mark.parametrize("aware", [False, True])
    def test_random_ops_match_dict(self, policy, aware):
        rng = random.Random(9)
        tree = make_tree(policy=policy, sortedness_aware=aware)
        model = {}
        for i in range(4000):
            op = rng.random()
            key = rng.randrange(600)
            if op < 0.6:
                tree.insert(key, key + i)
                model[key] = key + i
            elif op < 0.72:
                tree.delete(key)
                model.pop(key, None)
            elif op < 0.95:
                assert tree.get(key) == model.get(key)
            else:
                lo, hi = key, key + 30
                expected = sorted((k, v) for k, v in model.items() if lo <= k <= hi)
                assert tree.range_query(lo, hi) == expected
        tree.check_invariants()
        assert dict(tree.iter_items()) == model


class TestBulkLoad:
    def test_bulk_installs_run(self):
        tree = make_tree()
        tree.bulk_load_append([(k, k) for k in range(50)])
        assert tree.n_runs() >= 1
        assert all(tree.get(k) == k for k in range(50))

    def test_bulk_rejects_overlap(self):
        tree = make_tree()
        tree.insert(100, 1)
        with pytest.raises(BulkLoadError):
            tree.bulk_load_append([(50, 0)])

    def test_bulk_rejects_unsorted(self):
        tree = make_tree()
        with pytest.raises(BulkLoadError):
            tree.bulk_load_append([(2, 0), (1, 0)])


class TestCompactionBehaviour:
    def test_leveling_single_run_per_level(self):
        tree = make_tree(policy=LEVELING, memtable_capacity=8)
        for key in random.Random(1).sample(range(2000), 600):
            tree.insert(key, key)
        tree.check_invariants()
        for level in tree._levels:
            assert len(level) <= 1

    def test_tiering_accumulates_runs(self):
        tree = make_tree(policy=TIERING, memtable_capacity=8, size_ratio=4)
        keys = random.Random(2).sample(range(2000), 400)
        for key in keys:
            tree.insert(key, key)
        assert tree.n_runs() >= 1
        assert dict(tree.iter_items()) == {k: k for k in keys}

    def test_plain_lsm_write_amp_is_sortedness_agnostic(self):
        amps = {}
        for label, keys in (
            ("sorted", list(range(3000))),
            ("scrambled", random.Random(3).sample(range(3000), 3000)),
        ):
            tree = make_tree(memtable_capacity=64, size_ratio=4)
            for key in keys:
                tree.insert(key, key)
            amps[label] = tree.write_amplification
        assert amps["sorted"] == pytest.approx(amps["scrambled"], rel=0.3)
        assert amps["sorted"] > 2.0

    def test_skip_merge_collapses_sorted_write_amp(self):
        tree = make_tree(memtable_capacity=64, size_ratio=4, sortedness_aware=True)
        for key in range(3000):
            tree.insert(key, key)
        # Exactly one write per flushed entry (the last memtable is still
        # unflushed, so the ratio sits just under 1.0).
        assert 0.9 <= tree.write_amplification <= 1.0
        assert tree.trivial_moves > 0
        tree.check_invariants()

    def test_sware_over_lsm_rescues_near_sorted(self):
        from repro.core.config import SWAREConfig
        from repro.core.sware import SortednessAwareIndex
        from repro.sortedness.generator import generate_kl_keys

        n = 6000
        keys = generate_kl_keys(n, 0.10, 0.05, seed=4)
        plain = make_tree(memtable_capacity=64, size_ratio=4, sortedness_aware=True)
        for key in keys:
            plain.insert(key, key)
        wrapped_lsm = make_tree(memtable_capacity=64, size_ratio=4, sortedness_aware=True)
        wrapped = SortednessAwareIndex(
            wrapped_lsm, SWAREConfig(buffer_capacity=64, page_size=8)
        )
        for key in keys:
            wrapped.insert(key, key)
        wrapped.flush_all()
        assert wrapped_lsm.entries_written / n < plain.write_amplification / 2
        # Correctness preserved.
        for key in keys[:200]:
            assert wrapped.get(key) == key


class TestStats:
    def test_level_sizes_and_runs(self):
        tree = make_tree(memtable_capacity=8)
        for key in range(100):
            tree.insert(key, key)
        assert sum(tree.level_sizes()) + len(tree._memtable) == 100
        assert tree.n_runs() >= 1

    def test_write_amp_zero_before_inserts(self):
        assert make_tree().write_amplification == 0.0
