"""Hypothesis properties for checkpoint save/load and crash atomicity."""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.storage.faults import FaultyEnv, SimulatedCrash
from repro.storage.pagefile import CheckpointStore
from repro.storage.wal import WriteAheadLog, replay_wal

TREE_CONFIG = BPlusTreeConfig(leaf_capacity=4, internal_capacity=4)
SLOT_SIZE = 128

keys = st.integers(min_value=-(2**40), max_value=2**40)
values = st.one_of(st.integers(), st.text(max_size=20), st.tuples(st.integers()))
tree_contents = st.dictionaries(keys, values, max_size=120)


def _build(items):
    tree = BPlusTree(TREE_CONFIG)
    for key, value in items.items():
        tree.insert(key, value)
    return tree


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(items=tree_contents)
    def test_save_load_preserves_contents(self, items, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("ckpt") / "ck.db")
        store = CheckpointStore(path, slot_size=SLOT_SIZE)
        store.save_btree(_build(items))
        restored = store.load_btree()
        assert dict(restored.iter_items()) == items
        restored.check_invariants()

    def test_empty_and_single_key(self, tmp_path):
        path = str(tmp_path / "ck.db")
        store = CheckpointStore(path, slot_size=SLOT_SIZE)
        store.save_btree(_build({}))
        assert dict(store.load_btree().iter_items()) == {}
        store.save_btree(_build({42: "only"}))
        assert dict(store.load_btree().iter_items()) == {42: "only"}

    @settings(max_examples=15, deadline=None)
    @given(trees=st.lists(tree_contents, min_size=2, max_size=5))
    def test_repeated_saves_shrink_and_grow(self, trees, tmp_path_factory):
        """Each save fully replaces the last — a smaller second checkpoint
        must never resurrect the previous checkpoint's directory."""
        path = str(tmp_path_factory.mktemp("ckpt") / "ck.db")
        store = CheckpointStore(path, slot_size=SLOT_SIZE)
        for epoch, items in enumerate(trees, start=1):
            store.save_btree(_build(items))
            assert store.last_epoch == epoch
            assert dict(store.load_btree().iter_items()) == items


class TestCrashAtomicity:
    @settings(max_examples=30, deadline=None)
    @given(
        before=tree_contents,
        after=tree_contents,
        crash_at=st.integers(min_value=0, max_value=120),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_crash_during_save_leaves_previous_loadable(
        self, before, after, crash_at, seed, tmp_path_factory
    ):
        """Load after a crash at any point of a re-save returns either the
        old checkpoint or the new one, in full — never a torn mix."""
        path = str(tmp_path_factory.mktemp("ckpt") / "ck.db")
        store = CheckpointStore(path, slot_size=SLOT_SIZE)
        store.save_btree(_build(before))

        env = FaultyEnv(crash_at=crash_at, seed=seed)
        faulty = CheckpointStore(
            path, slot_size=SLOT_SIZE, opener=env.open, replace=env.replace
        )
        completed = True
        try:
            faulty.save_btree(_build(after))
        except SimulatedCrash:
            completed = False

        restored = CheckpointStore(path, slot_size=SLOT_SIZE).load_btree()
        got = dict(restored.iter_items())
        if completed:
            assert got == after
        else:
            assert got in (before, after)
        restored.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(st.tuples(keys, values), min_size=1, max_size=40),
        crash_at=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_wal_crash_preserves_acknowledged_prefix(
        self, ops, crash_at, seed, tmp_path_factory
    ):
        """Replay after a crash yields an exact prefix of the appended ops
        (plus at most the fully-persisted in-flight record)."""
        path = str(tmp_path_factory.mktemp("wal") / "log.wal")
        env = FaultyEnv(crash_at=crash_at, seed=seed)
        acked = 0
        try:
            wal = WriteAheadLog(path, opener=env.open)
            for key, value in ops:
                wal.append_put(key, value)
                acked += 1
            wal.close()
        except SimulatedCrash:
            pass
        if not os.path.exists(path):
            assert acked == 0
            return
        replay = replay_wal(path)
        assert replay.records in (acked, acked + 1)
        replayed = [(k, v) for _op, k, v in replay.ops]
        assert replayed == ops[: replay.records]
