"""Delete-of-missing-key semantics across every backend (§IV-D).

The B+-tree *reports* deletion (``delete`` returns False for an absent
key); the Bε-tree and LSM-tree are message-based (``delete`` returns
``None`` and buffers a tombstone regardless). The SWARE wrapper splits
tombstone accounting accordingly: flushed tombstones that removed a tree
entry count as ``tombstones_applied``, misses against a reporting backend
count as ``tombstones_noop``.
"""

from __future__ import annotations

import pytest

from repro.betree.betree import BeTree, BeTreeConfig
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.lsm.lsm import LSMTree


def _backends():
    return [
        ("btree", BPlusTree(BPlusTreeConfig(leaf_capacity=8, internal_capacity=8))),
        ("betree", BeTree(BeTreeConfig(node_size=16, leaf_capacity=8))),
        ("lsm", LSMTree()),
    ]


SMALL = SWAREConfig(buffer_capacity=8, page_size=4)


class TestRawBackendReturn:
    def test_btree_delete_reports_miss_and_hit(self):
        tree = BPlusTree()
        assert tree.delete(1) is False  # empty tree
        tree.insert(1, "a")
        assert tree.delete(1) is True
        assert tree.delete(1) is False  # already gone

    def test_message_backends_return_none(self):
        for label, tree in _backends()[1:]:
            assert tree.delete(99) is None, label
            tree.insert(99, "v")
            assert tree.delete(99) is None, label
            assert tree.get(99) is None, label


class TestDeleteThroughWrapper:
    @pytest.mark.parametrize("label,tree", _backends())
    def test_missing_key_empty_buffer_goes_direct(self, label, tree):
        index = SortednessAwareIndex(tree, config=SMALL)
        index.delete(123)  # empty buffer -> straight to the tree
        assert index.stats.deletes == 1
        assert index.stats.tombstones_buffered == 0
        assert index.get(123) is None

    @pytest.mark.parametrize("label,tree", _backends())
    def test_missing_key_populated_buffer(self, label, tree):
        index = SortednessAwareIndex(tree, config=SMALL)
        for key in (10, 20, 30):
            index.insert(key, key)
        # 25 is inside the buffer's key range: a tombstone is buffered
        # even though the key exists nowhere.
        index.delete(25)
        assert index.stats.tombstones_buffered == 1
        assert index.get(25) is None
        index.flush_all()
        assert index.get(25) is None
        assert index.items() == [(10, 10), (20, 20), (30, 30)]

    @pytest.mark.parametrize("label,tree", _backends())
    def test_present_key_deleted_everywhere(self, label, tree):
        index = SortednessAwareIndex(tree, config=SMALL)
        for key in range(20):
            index.insert(key, key * 10)
        index.delete(5)
        index.flush_all()
        assert index.get(5) is None
        assert index.get(6) == 60
        assert sorted(k for k, _ in index.items()) == [
            k for k in range(20) if k != 5
        ]


class TestTombstoneAccountingSplit:
    def test_noop_vs_applied_on_reporting_backend(self):
        """Tombstones for never-inserted keys must not count as applied."""
        tree = BPlusTree(BPlusTreeConfig(leaf_capacity=8, internal_capacity=8))
        index = SortednessAwareIndex(tree, config=SMALL)
        # Put real keys into the tree so flushed tombstones overlap it.
        for key in range(0, 40, 2):
            index.insert(key, key)
        index.flush_all()
        assert index.stats.tombstones_applied == 0
        assert index.stats.tombstones_noop == 0

        index.insert(1, 1)  # repopulate the buffer: range now [1, 21]
        index.insert(21, 21)
        index.delete(2)    # present in the tree -> applied
        index.delete(3)    # never inserted -> noop
        index.delete(13)   # never inserted -> noop
        assert index.stats.tombstones_buffered == 3
        index.flush_all()
        assert index.stats.tombstones_applied == 1
        assert index.stats.tombstones_noop == 2
        assert index.get(2) is None
        assert index.get(4) == 4

    def test_message_backend_counts_all_as_applied(self):
        """Bε-tree deletes return None: no split is observable."""
        tree = BeTree(BeTreeConfig(node_size=16, leaf_capacity=8))
        index = SortednessAwareIndex(tree, config=SMALL)
        for key in range(0, 20, 2):
            index.insert(key, key)
        index.flush_all()
        index.insert(1, 1)
        index.insert(15, 15)
        index.delete(2)   # present
        index.delete(3)   # absent — indistinguishable to a message backend
        index.flush_all()
        assert index.stats.tombstones_applied == 2
        assert index.stats.tombstones_noop == 0

    def test_snapshot_exposes_both_counters(self):
        stats = SortednessAwareIndex(BPlusTree(), config=SMALL).stats
        snapshot = stats.snapshot()
        assert "tombstones_applied" in snapshot
        assert "tombstones_noop" in snapshot
