"""Tests for the deterministic race harness (repro.core.schedules)."""

from __future__ import annotations

import pytest

from repro.core.schedules import (
    ScheduleExplorer,
    ScheduleStats,
    ScheduleViolation,
    explore,
    generate_programs,
    run_schedule,
)

#: The acceptance bar: this many seeded interleavings must replay with
#: zero invariant or linearizability violations.
N_SCHEDULES = 1000


class TestExploration:
    def test_thousand_seeded_interleavings(self):
        report = explore(n_schedules=N_SCHEDULES)
        assert len(report.stats) == N_SCHEDULES
        # Every schedule committed its full program.
        assert all(s.commits == 36 for s in report.stats)
        # The exploration actually exercised the interesting regimes:
        assert report.total_conflicts > 0, "no lock conflicts explored"
        assert report.total_flushes > 0, "no flush cycles explored"
        assert report.total_upgrades > 0, "no S->X upgrades explored"
        assert report.total_fallbacks > 0, "no upgrade fallbacks explored"

    def test_deterministic_replay(self):
        first = run_schedule(1234)
        second = run_schedule(1234)
        assert first == second
        assert isinstance(first, ScheduleStats)

    def test_different_seeds_differ(self):
        assert run_schedule(1) != run_schedule(2)


class TestPrograms:
    def test_generation_is_seeded(self):
        assert generate_programs(5) == generate_programs(5)
        assert generate_programs(5) != generate_programs(6)

    def test_explicit_program_final_state(self):
        programs = [
            [("insert", 1, 10), ("insert", 2, 20), ("delete", 1)],
            [("insert", 3, 30), ("get", 2), ("range", 0, 10)],
        ]
        explorer = ScheduleExplorer(7, programs=programs)
        explorer.run()
        assert explorer.oracle == {2: 20, 3: 30}
        assert explorer.index.items() == [(2, 20), (3, 30)]

    def test_delete_of_missing_key(self):
        programs = [[("delete", 42), ("get", 42), ("insert", 1, 11), ("delete", 99)]]
        explorer = ScheduleExplorer(3, programs=programs)
        stats = explorer.run()
        assert stats.commits == 4
        assert explorer.index.items() == [(1, 11)]


class TestHarnessHasTeeth:
    def test_lost_write_is_detected(self):
        """A buffer that silently drops appends must fail the oracle."""
        explorer = ScheduleExplorer(11)
        real_add = explorer.index.buffer.add
        calls = {"n": 0}

        def lossy_add(key, value, tombstone=False):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                return  # swallow the write
            real_add(key, value, tombstone=tombstone)

        explorer.index.buffer.add = lossy_add
        with pytest.raises(ScheduleViolation):
            explorer.run()

    def test_stale_read_is_detected(self):
        """A lookup ignoring the buffer must diverge from the oracle."""
        explorer = ScheduleExplorer(11)
        explorer.index.get = lambda key: None
        with pytest.raises(ScheduleViolation):
            explorer.run()

    def test_leaked_lock_is_detected(self):
        programs = [[("insert", 1, 1)]]
        explorer = ScheduleExplorer(0, programs=programs)
        finish = explorer.protocol.finish_append
        explorer.protocol.finish_append = lambda worker, page: None
        try:
            with pytest.raises(ScheduleViolation, match="lock leaked"):
                explorer.run()
        finally:
            explorer.protocol.finish_append = finish
