"""Direct checks of specific sentences in the paper, one test per claim."""

from repro.bench.experiments import common
from repro.bench.runner import run_phases, speedup
from repro.core.config import SWAREConfig
from repro.core.factory import make_baseline_btree, make_sa_btree
from repro.storage.costmodel import CostModel, Meter
from repro.workloads.spec import value_for


class TestReadOnlyClaim:
    """§V-B: "for read-only workloads, the performance of SA B+-tree is
    similar to that of B+-trees, as the buffer remains empty, and thus,
    adds no overhead"."""

    def test_read_only_parity(self):
        n = 4000
        keys = common.keys_for(n, 0.10, 0.05, seed=7)
        items = [(key, value_for(key)) for key in sorted(keys)]
        model = CostModel()
        costs = {}
        for label, build in (
            ("base", lambda m: make_baseline_btree(meter=m)),
            (
                "sa",
                lambda m: make_sa_btree(
                    SWAREConfig(buffer_capacity=64, page_size=8), meter=m
                ),
            ),
        ):
            meter = Meter()
            index = build(meter)
            # Identical pre-built trees: bulk load both, then read only.
            index.backend.bulk_load_append(items) if hasattr(
                index, "backend"
            ) else index.bulk_load_append(items)
            before = meter.nanos(model)
            for key in keys[:2000]:
                index.get(key)
            costs[label] = meter.nanos(model) - before
        # Empty buffer => a whole-buffer zonemap check per lookup at most.
        assert costs["sa"] < costs["base"] * 1.10


class TestBufferHalfFullOnAverage:
    """§IV-B: after a flush the buffer is "at least half" sorted and "in
    practice, the buffer is expected to be 50% saturated on average"."""

    def test_post_flush_fill(self):
        index = make_sa_btree(SWAREConfig(buffer_capacity=64, page_size=8))
        fills = []
        for key in range(2000):
            index.insert(key, key)
            fills.append(len(index.buffer) / index.buffer.capacity)
        average_fill = sum(fills) / len(fills)
        assert 0.5 <= average_fill <= 0.85
        # Immediately after any flush, at least half the capacity remains.
        assert min(fills) * 64 >= 1


class TestSortednessIsAResource:
    """§I: "the higher the data sortedness, the lower the insertion cost
    should be for an ideal tree data structure" — monotonicity across a
    fine-grained K sweep."""

    def test_ingest_cost_monotone_in_k(self):
        n = 6000
        model = CostModel()
        costs = []
        for k in (0.0, 0.05, 0.20, 0.60, 1.00):
            keys = common.keys_for(n, k, 0.25, seed=7)
            meter = Meter()
            index = make_sa_btree(
                common.buffer_config(n, 0.01), meter=meter
            )
            for key in keys:
                index.insert(key, key)
            costs.append(meter.nanos(model))
        # Allow small non-monotonic wiggle between adjacent points, but the
        # overall trend must be strongly increasing.
        assert costs[0] < costs[-1] / 2
        for earlier, later in zip(costs, costs[2:]):
            assert earlier < later * 1.05


class TestBufferpoolPinning:
    """§IV-A: "To ensure its contents are always in memory we pin its
    pages in the system's bufferpool" — the SWARE buffer must never cause
    simulated disk I/O, even when the tree's pool thrashes."""

    def test_buffer_never_touches_disk(self):
        from repro.storage.bufferpool import BufferPool

        meter = Meter()
        pool = BufferPool(capacity=4, meter=meter)
        index = make_sa_btree(
            SWAREConfig(buffer_capacity=64, page_size=8), meter=meter, pool=pool
        )
        for key in range(63):  # stays entirely in the buffer: no flush yet
            index.insert(key, key)
        for key in range(63):
            assert index.get(key) == key
        assert meter["disk_read"] == 0
        assert meter["disk_write"] == 0


class TestWriteHeavyThreshold:
    """§V-D: "the benefits of SA B+-tree outweigh the read-overheads even
    for a small fraction of writes (>= 5%)" for near-sorted data."""

    def test_small_write_fraction_still_wins(self):
        n = 8000
        keys = common.keys_for(n, 0.10, 0.05, seed=7)
        ops = common.mixed_ops(keys, 0.95, seed=7, max_reads=3 * n)
        base = run_phases(common.baseline_btree_factory(), [("mixed", ops)])
        sa = run_phases(
            common.sa_btree_factory(common.buffer_config(n, 0.01)),
            [("mixed", ops)],
        )
        assert speedup(base, sa) > 1.0
