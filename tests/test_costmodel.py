"""Tests for the cost model and meter."""


from repro.storage.costmodel import (
    DEFAULT_WEIGHTS,
    NULL_METER,
    CostModel,
    Meter,
    StopwatchResult,
    stopwatch,
)


class TestCostModel:
    def test_default_weights_present(self):
        model = CostModel()
        assert model.cost("node_access") == DEFAULT_WEIGHTS["node_access"]

    def test_unknown_kind_is_free(self):
        assert CostModel().cost("frobnicate", 100) == 0.0

    def test_overrides(self):
        model = CostModel({"node_access": 1.0})
        assert model.cost("node_access", 5) == 5.0
        # Non-overridden weights keep defaults.
        assert model.cost("disk_read") == DEFAULT_WEIGHTS["disk_read"]

    def test_nanos_sums_counts(self):
        model = CostModel({"a": 2.0, "b": 3.0})
        assert model.nanos({"a": 10, "b": 1}) == 23.0

    def test_disk_dwarfs_memory(self):
        model = CostModel()
        assert model.cost("disk_read") > 100 * model.cost("node_access")


class TestMeter:
    def test_charge_accumulates(self):
        meter = Meter()
        meter.charge("x")
        meter.charge("x", 4)
        assert meter["x"] == 5

    def test_missing_kind_zero(self):
        assert Meter()["nothing"] == 0.0

    def test_nanos(self):
        meter = Meter()
        meter.charge("node_access", 10)
        assert meter.nanos(CostModel()) == 10 * DEFAULT_WEIGHTS["node_access"]

    def test_buckets_attribute_charges(self):
        meter = Meter()
        with meter.bucket("sort"):
            meter.charge("sort_comparison", 100)
        meter.charge("sort_comparison", 50)  # unbucketed
        buckets = meter.bucket_nanos(CostModel())
        assert buckets["sort"] == 100 * DEFAULT_WEIGHTS["sort_comparison"]
        assert meter["sort_comparison"] == 150

    def test_nested_buckets_innermost_wins(self):
        meter = Meter()
        with meter.bucket("outer"):
            meter.charge("a", 1)
            with meter.bucket("inner"):
                meter.charge("a", 2)
        assert meter.bucket_counts["outer"]["a"] == 1
        assert meter.bucket_counts["inner"]["a"] == 2

    def test_bucket_wall_time_tracked(self):
        meter = Meter()
        with meter.bucket("phase"):
            pass
        assert meter.bucket_wall_ns["phase"] >= 0

    def test_reset(self):
        meter = Meter()
        with meter.bucket("b"):
            meter.charge("x")
        meter.reset()
        assert meter["x"] == 0
        assert not meter.bucket_counts

    def test_snapshot_is_copy(self):
        meter = Meter()
        meter.charge("x")
        snap = meter.snapshot()
        meter.charge("x")
        assert snap["x"] == 1

    def test_merge_adds_counts_and_buckets(self):
        a = Meter()
        with a.bucket("sort"):
            a.charge("sort_comparison", 10)
        a.charge("node_access", 3)
        b = Meter()
        with b.bucket("sort"):
            b.charge("sort_comparison", 5)
        with b.bucket("bulk_load"):
            b.charge("bulk_entry", 7)
        assert a.merge(b) is a
        assert a["sort_comparison"] == 15
        assert a["node_access"] == 3
        assert a["bulk_entry"] == 7
        assert a.bucket_counts["sort"]["sort_comparison"] == 15
        assert a.bucket_counts["bulk_load"]["bulk_entry"] == 7
        # The merged-from meter is untouched.
        assert b["sort_comparison"] == 5

    def test_merge_accumulates_wall_time(self):
        a = Meter()
        b = Meter()
        with b.bucket("phase"):
            sum(range(100))
        wall = b.bucket_wall_ns["phase"]
        a.merge(b)
        a.merge(b)
        assert a.bucket_wall_ns["phase"] == 2 * wall

    def test_merge_then_reset_supports_multi_phase_aggregation(self):
        total = Meter()
        phase = Meter()
        for _ in range(3):
            phase.charge("node_access", 2)
            total.merge(phase)
            phase.reset()
        assert total["node_access"] == 6
        assert phase["node_access"] == 0


class TestNullMeter:
    def test_discards_everything(self):
        NULL_METER.charge("x", 100)
        assert NULL_METER["x"] == 0

    def test_bucket_is_noop(self):
        with NULL_METER.bucket("anything"):
            NULL_METER.charge("y")
        assert not NULL_METER.bucket_counts


class TestStopwatch:
    def test_accumulates_wall_time(self):
        result = StopwatchResult()
        with stopwatch(result, section="a"):
            sum(range(1000))
        with stopwatch(result, section="a"):
            pass
        assert result.wall_ns > 0
        assert result.sections["a"] <= result.wall_ns + 1
