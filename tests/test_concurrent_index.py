"""Tests for the thread-safe SWARE front-end (repro.core.concurrent)."""

from __future__ import annotations

import random
import threading

import pytest

from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.core.concurrent import BUFFER, ConcurrentSortednessAwareIndex
from repro.core.config import SWAREConfig
from repro.core.locks import EXCLUSIVE, SHARED
from repro.core.sware import SortednessAwareIndex
from repro.errors import LockTimeout

SMALL = SWAREConfig(buffer_capacity=16, page_size=4, query_sorting_threshold=0.25)


def make_index(config=SMALL, **kwargs):
    return ConcurrentSortednessAwareIndex(
        BPlusTree(BPlusTreeConfig(leaf_capacity=16, internal_capacity=16)),
        config=config,
        **kwargs,
    )


class TestSingleThreaded:
    def test_basic_crud(self):
        index = make_index()
        for key in range(50):
            index.insert(key, key * 10)
        assert index.get(7) == 70
        assert index.get(999) is None
        index.delete(7)
        assert index.get(7) is None
        assert index.range_query(0, 9) == [
            (k, k * 10) for k in range(10) if k != 7
        ]
        index.flush_all()
        index.check_invariants()

    def test_matches_plain_index(self):
        """Same op stream -> same final state as the unwrapped index."""
        rng = random.Random(3)
        ops = []
        for _ in range(800):
            roll = rng.random()
            key = rng.randrange(200)
            if roll < 0.7:
                ops.append(("put", key, key * 3 + 1))
            else:
                ops.append(("del", key))

        plain = SortednessAwareIndex(
            BPlusTree(BPlusTreeConfig(leaf_capacity=16, internal_capacity=16)),
            config=SMALL,
        )
        conc = make_index()
        for op in ops:
            if op[0] == "put":
                plain.insert(op[1], op[2])
                conc.insert(op[1], op[2])
            else:
                plain.delete(op[1])
                conc.delete(op[1])
        plain.flush_all()
        conc.flush_all()
        assert conc.items() == plain.items()

    def test_put_many_chunks_and_flushes(self):
        index = make_index()
        items = [(key, key) for key in range(100)]
        index.put_many(items)
        assert index.stats.inserts == 100
        assert index.stats.flushes >= 5
        assert index.get(42) == 42
        assert len(index.items()) == 100

    def test_none_value_rejected(self):
        index = make_index()
        with pytest.raises(ValueError):
            index.insert(1, None)
        with pytest.raises(ValueError):
            index.put_many([(1, None)])

    def test_no_locks_leak_after_ops(self):
        index = make_index()
        for key in range(40):
            index.insert(key, key)
        index.get(3)
        index.range_query(0, 20)
        index.delete(5)
        index.flush_all()
        assert index.locks.mode(BUFFER) is None
        for page in range(index.config.n_pages):
            assert index.locks.mode(f"page:{page}") is None

    def test_query_sort_owned_by_front_end(self):
        """The inner index's own trigger is disabled; the front-end
        query-sorts under its upgraded exclusive lock."""
        index = make_index()
        assert index.inner.config.query_sorting_threshold == 1.0
        for key in range(10, 0, -1):  # out of order: grows the tail
            index.insert(key, key)
        assert index.buffer.tail_size > 0
        index.get(5)  # trigger: tail (10) >= 0.25 * 16
        assert index.buffer.tail_size == 0
        assert index.stats.query_sorts >= 1
        assert index.locks.snapshot()["upgrades"] >= 1

    def test_describe_includes_lock_counters(self):
        index = make_index()
        index.insert(1, 1)
        doc = index.describe()
        assert "locks" in doc
        assert doc["locks"]["acquires"] > 0
        assert "upgrade_fallbacks" in doc["locks"]


class TestLockDiscipline:
    def test_reader_blocks_writer_and_surfaces_timeout(self):
        index = make_index(lock_timeout=0.05)
        index.insert(1, 1)
        index.locks.acquire("intruder", BUFFER, SHARED)
        try:
            with pytest.raises(LockTimeout):
                index.insert(2, 2)  # instantaneous X check cannot be granted
        finally:
            index.locks.release("intruder", BUFFER)
        index.insert(2, 2)  # recovers once the reader left
        assert index.get(2) == 2

    def test_writer_blocks_reader(self):
        index = make_index(lock_timeout=0.05, upgrade_timeout=0.01)
        index.insert(1, 1)
        index.locks.acquire("intruder", BUFFER, EXCLUSIVE)
        try:
            with pytest.raises(LockTimeout):
                index.get(1)
        finally:
            index.locks.release("intruder", BUFFER)
        assert index.get(1) == 1
        assert index.locks.mode(BUFFER) is None  # nothing leaked

    def test_upgrade_fallback_when_other_reader_present(self):
        """A foreign S hold makes the upgrade time out; the reader falls
        back to release + exclusive re-acquire once the field clears."""
        index = make_index(upgrade_timeout=0.05)
        for key in range(10, 0, -1):  # out of order: grows the tail
            index.insert(key, key)
        assert index._should_query_sort()
        index.locks.acquire("other-reader", BUFFER, SHARED)
        done = threading.Event()
        result = {}

        def read():
            result["value"] = index.get(4)
            done.set()

        thread = threading.Thread(target=read)
        thread.start()
        # The reader is now past its failed upgrade, waiting for X.
        thread.join(timeout=0.5)
        assert not done.is_set()
        index.locks.release("other-reader", BUFFER)
        assert done.wait(timeout=5.0)
        thread.join()
        assert result["value"] == 4
        assert index.upgrade_fallbacks == 1
        assert index.locks.mode(BUFFER) is None


class TestMultiThreaded:
    def test_stress_mixed_ops(self):
        index = make_index(
            config=SWAREConfig(
                buffer_capacity=64, page_size=8, query_sorting_threshold=0.25
            )
        )
        failures = []

        def work(tid):
            rng = random.Random(tid)
            try:
                for _ in range(2500):
                    roll = rng.random()
                    key = rng.randrange(1000)
                    if roll < 0.6:
                        index.insert(key, key * 10 + tid)
                    elif roll < 0.85:
                        value = index.get(key)
                        if value is not None:
                            assert value // 10 == key
                    elif roll < 0.95:
                        for k, v in index.range_query(key, key + 30):
                            assert key <= k <= key + 30
                    else:
                        index.delete(key)
            except Exception as exc:  # propagate to the main thread
                failures.append(repr(exc))

        threads = [threading.Thread(target=work, args=(tid,)) for tid in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        index.flush_all()
        index.check_invariants()
        assert index.locks.mode(BUFFER) is None
        # Every surviving value was written by one of the four workers.
        for key, value in index.items():
            assert value // 10 == key
            assert 0 <= value % 10 < 4

    def test_concurrent_put_many_and_readers(self):
        index = make_index(
            config=SWAREConfig(buffer_capacity=64, page_size=8)
        )
        failures = []

        def writer(tid):
            try:
                items = [(key, key * 10 + tid) for key in range(tid, 3000, 3)]
                for start in range(0, len(items), 100):
                    index.put_many(items[start : start + 100])
            except Exception as exc:
                failures.append(repr(exc))

        def reader():
            rng = random.Random(99)
            try:
                for _ in range(2000):
                    key = rng.randrange(3000)
                    value = index.get(key)
                    if value is not None:
                        assert value // 10 == key
            except Exception as exc:
                failures.append(repr(exc))

        threads = [threading.Thread(target=writer, args=(tid,)) for tid in range(3)]
        threads.append(threading.Thread(target=reader))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        index.flush_all()
        index.check_invariants()
        assert len(index.items()) == 3000

    def test_flush_exactness_no_append_overfill(self):
        """Concurrent single-key writers must never overfill the buffer
        (the reservation counter keeps flush predictions exact)."""
        index = make_index(
            config=SWAREConfig(buffer_capacity=16, page_size=4)
        )
        failures = []

        def work(tid):
            try:
                for i in range(1500):
                    index.insert(tid * 10_000 + i, i + 1)
            except Exception as exc:
                failures.append(repr(exc))

        threads = [threading.Thread(target=work, args=(tid,)) for tid in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        index.check_invariants()  # would raise had the buffer overfilled
        index.flush_all()
        assert len(index.items()) == 6000
