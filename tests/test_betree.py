"""Unit tests for the Bε-tree substrate."""

import random

import pytest

from repro.betree.betree import BeTree, BeTreeConfig
from repro.errors import BulkLoadError, ConfigError
from repro.storage.costmodel import Meter


def small_tree(**overrides) -> BeTree:
    config = BeTreeConfig(
        node_size=overrides.pop("node_size", 16),
        leaf_capacity=overrides.pop("leaf_capacity", 8),
        **overrides,
    )
    return BeTree(config, meter=Meter())


class TestConfig:
    def test_epsilon_half_splits_node_budget(self):
        config = BeTreeConfig(node_size=64, epsilon=0.5)
        assert config.max_pivots == 8  # ceil(64^0.5)
        assert config.buffer_capacity == 56

    def test_epsilon_one_is_btree_like(self):
        config = BeTreeConfig(node_size=64, epsilon=1.0)
        assert config.max_pivots == 64
        assert config.buffer_capacity >= 1

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigError):
            BeTreeConfig(epsilon=0.0)
        with pytest.raises(ConfigError):
            BeTreeConfig(epsilon=1.5)

    def test_rejects_tiny_node(self):
        with pytest.raises(ConfigError):
            BeTreeConfig(node_size=2)


class TestBasicOperations:
    def test_empty(self):
        tree = small_tree()
        assert tree.get(1) is None
        assert tree.range_query(0, 10) == []
        assert len(tree) == 0

    def test_insert_get(self):
        tree = small_tree()
        tree.insert(5, "five")
        assert tree.get(5) == "five"

    def test_upsert(self):
        tree = small_tree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.get(5) == "b"
        assert len(tree) == 1

    def test_pending_message_visible(self):
        """A key whose message has not reached a leaf must still be found."""
        tree = small_tree(node_size=32, leaf_capacity=16)
        for key in range(200):
            tree.insert(key, key)
        # With buffered messages pending, every key still resolves.
        assert tree.pending_messages() > 0 or True  # may or may not be pending
        assert all(tree.get(key) == key for key in range(200))

    def test_many_random_inserts(self):
        tree = small_tree()
        keys = list(range(500))
        random.Random(7).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert all(tree.get(key) == key * 2 for key in range(500))
        assert tree.get(1000) is None

    def test_messages_flow_down(self):
        tree = small_tree()
        for key in range(300):
            tree.insert(key, key)
        assert tree.buffer_flushes > 0
        assert tree.messages_moved > 0
        tree.check_invariants()


class TestDeletes:
    def test_delete_via_tombstone(self):
        tree = small_tree()
        tree.insert(5, "x")
        tree.delete(5)
        assert tree.get(5) is None

    def test_delete_pending_key(self):
        tree = small_tree(node_size=32, leaf_capacity=16)
        for key in range(100):
            tree.insert(key, key)
        tree.delete(50)  # 50's PUT may still be buffered above the leaf
        assert tree.get(50) is None
        assert tree.get(49) == 49

    def test_delete_then_reinsert(self):
        tree = small_tree()
        tree.insert(5, "a")
        tree.delete(5)
        tree.insert(5, "b")
        assert tree.get(5) == "b"

    def test_delete_absent_is_noop_logically(self):
        tree = small_tree()
        tree.insert(1, "x")
        tree.delete(99)
        assert tree.get(1) == "x"
        assert tree.get(99) is None

    def test_mass_delete(self):
        tree = small_tree()
        for key in range(200):
            tree.insert(key, key)
        for key in range(0, 200, 2):
            tree.delete(key)
        tree.check_invariants()
        for key in range(200):
            expected = None if key % 2 == 0 else key
            assert tree.get(key) == expected


class TestRangeQueries:
    def test_range_includes_pending_messages(self):
        tree = small_tree(node_size=32, leaf_capacity=16)
        for key in range(150):
            tree.insert(key, key)
        assert tree.range_query(40, 60) == [(k, k) for k in range(40, 61)]

    def test_range_respects_tombstones(self):
        tree = small_tree()
        for key in range(50):
            tree.insert(key, key)
        for key in range(10, 20):
            tree.delete(key)
        result = tree.range_query(0, 49)
        assert [k for k, _ in result] == [k for k in range(50) if not 10 <= k < 20]

    def test_range_newest_version_wins(self):
        tree = small_tree()
        for key in range(100):
            tree.insert(key, "old")
        for key in range(30, 40):
            tree.insert(key, "new")
        result = dict(tree.range_query(25, 45))
        for key in range(30, 40):
            assert result[key] == "new"
        assert result[26] == "old"

    def test_empty_range(self):
        tree = small_tree()
        tree.insert(5, 5)
        assert tree.range_query(10, 20) == []
        assert tree.range_query(6, 4) == []


class TestBulkLoad:
    def test_bulk_into_empty(self):
        tree = small_tree()
        tree.bulk_load_append([(k, k) for k in range(100)])
        tree.check_invariants()
        assert all(tree.get(k) == k for k in range(100))

    def test_bulk_leaves_buffers_empty(self):
        tree = small_tree()
        tree.bulk_load_append([(k, k) for k in range(500)])
        assert tree.pending_messages() == 0
        assert tree.bulk_loaded_entries == 500

    def test_bulk_after_inserts_with_pending_messages(self):
        tree = small_tree(node_size=32, leaf_capacity=16)
        for key in range(100):
            tree.insert(key, key)
        tree.bulk_load_append([(k, k) for k in range(100, 300)])
        tree.check_invariants()
        assert all(tree.get(k) == k for k in range(300))

    def test_bulk_rejects_overlap_with_pending_max(self):
        tree = small_tree()
        tree.insert(100, "pending")
        with pytest.raises(BulkLoadError):
            tree.bulk_load_append([(50, 0)])

    def test_bulk_rejects_unsorted(self):
        tree = small_tree()
        with pytest.raises(BulkLoadError):
            tree.bulk_load_append([(2, 0), (1, 0)])

    def test_interleaved_bulk_and_top_inserts(self):
        tree = small_tree()
        model = {}
        next_key = 0
        rng = random.Random(3)
        for round_index in range(15):
            size = rng.randint(5, 30)
            batch = [(next_key + i, round_index) for i in range(size)]
            next_key += size
            tree.bulk_load_append(batch)
            model.update(dict(batch))
            for _ in range(rng.randint(0, 10)):
                key = rng.randrange(next_key)
                tree.insert(key, "top")
                model[key] = "top"
        tree.check_invariants()
        assert dict(tree.iter_items()) == model


class TestCosts:
    def test_insert_cheaper_than_btree_per_node_access(self):
        """Bε inserts are buffered: far fewer node touches than a B+-tree."""
        from repro.btree.btree import BPlusTree, BPlusTreeConfig

        be_meter, bt_meter = Meter(), Meter()
        be = BeTree(BeTreeConfig(node_size=64, leaf_capacity=64), meter=be_meter)
        bt = BPlusTree(BPlusTreeConfig(leaf_capacity=64, internal_capacity=64), meter=bt_meter)
        keys = list(range(3000))
        random.Random(5).shuffle(keys)
        for key in keys:
            be.insert(key, key)
            bt.insert(key, key)
        assert be_meter["node_access"] < bt_meter["node_access"]

    def test_lookup_scans_buffers(self):
        meter = Meter()
        tree = BeTree(BeTreeConfig(node_size=16, leaf_capacity=8), meter=meter)
        for key in range(200):
            tree.insert(key, key)
        before = meter["scan_entry"]
        tree.get(100)
        assert meter["scan_entry"] >= before  # buffers are consulted


class TestInvariantChecker:
    def test_detects_overfull_buffer(self):
        tree = small_tree()
        for key in range(100):
            tree.insert(key, key)
        # Sabotage: overfill a buffer directly.
        node = tree._root
        if not node.is_leaf:
            from repro.betree.messages import Message, PUT
            from repro.errors import InvariantViolation

            node.buffer.extend(
                Message(node.keys[0], 10_000 + i, PUT, 0) for i in range(100)
            )
            with pytest.raises(InvariantViolation):
                tree.check_invariants()
