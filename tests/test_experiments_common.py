"""Tests for the experiment-harness plumbing (repro.bench.experiments.common)."""


from repro.bench.experiments import common
from repro.workloads.spec import INSERT, LOOKUP


class TestScaling:
    def test_scaled_floor(self):
        assert common.scaled(10) >= 1000

    def test_scaled_identity_at_default(self):
        if common.SCALE == 1.0:
            assert common.scaled(20_000) == 20_000


class TestKeysFor:
    def test_cache_returns_same_object(self):
        a = common.keys_for(2000, 0.1, 0.05, seed=3)
        b = common.keys_for(2000, 0.1, 0.05, seed=3)
        assert a is b  # lru_cache hit

    def test_none_means_scrambled(self):
        keys = common.keys_for(2000, None, None, seed=3)
        assert sorted(keys) == list(range(2000))
        assert list(keys) != sorted(keys)

    def test_zero_k_is_sorted(self):
        assert list(common.keys_for(500, 0.0, 0.5)) == list(range(500))


class TestBufferConfig:
    def test_page_aligned(self):
        config = common.buffer_config(100_000, 0.01)
        assert config.buffer_capacity % config.page_size == 0

    def test_tiny_buffer_shrinks_page(self):
        config = common.buffer_config(10_000, 0.0005)  # 5 entries requested
        assert config.page_size <= config.buffer_capacity // 2
        assert config.buffer_capacity >= 8

    def test_overrides_forwarded(self):
        config = common.buffer_config(10_000, 0.01, flush_fraction=0.25)
        assert config.flush_fraction == 0.25


class TestOndiskPool:
    def test_scales_with_n(self):
        assert common.ondisk_pool_capacity(100_000) > common.ondisk_pool_capacity(5_000)

    def test_minimum(self):
        assert common.ondisk_pool_capacity(100) >= 24


class TestMixedOps:
    def test_read_cap_default(self):
        ops = common.mixed_ops(tuple(range(1000)), 0.9)
        lookups = sum(1 for op in ops if op[0] == LOOKUP)
        assert lookups <= 3000

    def test_all_keys_inserted(self):
        ops = common.mixed_ops(tuple(range(500)), 0.5)
        inserted = sorted(op[1] for op in ops if op[0] == INSERT)
        assert inserted == list(range(500))


class TestTopupOps:
    def test_keys_above_domain(self):
        ops = common.topup_ops(1000, 0.1, 0.05, count=50)
        assert all(op[0] == INSERT for op in ops)
        assert all(op[1] >= 1000 for op in ops)
        assert len(ops) == 50

    def test_sorted_variant(self):
        ops = common.topup_ops(1000, 0.0, 0.0, count=20)
        keys = [op[1] for op in ops]
        assert keys == sorted(keys)

    def test_scrambled_variant(self):
        ops = common.topup_ops(1000, None, None, count=200)
        keys = [op[1] for op in ops]
        assert sorted(keys) == list(range(1000, 1200))


class TestFactories:
    def test_factories_share_meter(self):
        from repro.storage.costmodel import Meter

        meter = Meter()
        index = common.sa_btree_factory(common.buffer_config(1000, 0.01))(meter)
        index.insert(1, 1)
        assert meter["buffer_append"] == 1
        assert index.backend.meter is meter

    def test_pool_wired_when_requested(self):
        from repro.storage.costmodel import Meter

        factory = common.baseline_btree_factory(pool_capacity=8)
        tree = factory(Meter())
        assert tree.pool is not None
        assert tree.pool.capacity == 8
