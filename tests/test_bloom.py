"""Tests for repro.filters.bloom."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.filters.bloom import BloomFilter, optimal_num_probes
from repro.filters.hashing import SharedHash


class TestConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BloomFilter(0)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            BloomFilter(100, bits_per_entry=-1)

    def test_optimal_probes_for_paper_default(self):
        # 10 bits/entry -> k = round(10 ln 2) = 7.
        assert optimal_num_probes(10.0) == 7

    def test_optimal_probes_minimum_one(self):
        assert optimal_num_probes(0.5) == 1

    def test_sizes(self):
        bf = BloomFilter(1000, bits_per_entry=10)
        assert bf.n_bits == 10_000
        assert bf.n_probes == 7


class TestNoFalseNegatives:
    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_added_keys_always_positive(self, keys):
        bf = BloomFilter(max(len(keys), 1), bits_per_entry=10)
        for key in keys:
            bf.add(key)
        for key in keys:
            assert bf.may_contain(key)

    def test_shared_hash_paths_agree(self):
        bf = BloomFilter(64, rotation=17)
        bf.add_shared(SharedHash(42))
        assert bf.may_contain_shared(SharedHash(42))
        assert bf.may_contain(42)

    def test_murmur_family_no_false_negatives(self):
        bf = BloomFilter(128, hash_family="murmur3")
        for key in range(100):
            bf.add(key)
        assert all(bf.may_contain(key) for key in range(100))


class TestFalsePositiveRate:
    def test_fpr_near_theoretical(self):
        bf = BloomFilter(2000, bits_per_entry=10)
        for key in range(2000):
            bf.add(key)
        false_positives = sum(
            1 for key in range(1_000_000, 1_010_000) if bf.may_contain(key)
        )
        rate = false_positives / 10_000
        # ~0.8% expected at 10 bits/entry; allow generous slack.
        assert rate < 0.03

    def test_expected_fpr_formula(self):
        bf = BloomFilter(1000, bits_per_entry=10)
        assert bf.expected_fpr() == 0.0
        for key in range(1000):
            bf.add(key)
        assert 0.001 < bf.expected_fpr() < 0.02

    def test_empty_filter_all_negative(self):
        bf = BloomFilter(100)
        assert not any(bf.may_contain(key) for key in range(50))


class TestClearAndState:
    def test_clear_resets(self):
        bf = BloomFilter(100)
        for key in range(100):
            bf.add(key)
        assert bf.saturation > 0
        bf.clear()
        assert bf.saturation == 0
        assert bf.n_added == 0
        assert not bf.may_contain(5)

    def test_saturation_grows(self):
        bf = BloomFilter(100)
        before = bf.saturation
        bf.add(1)
        assert bf.saturation > before

    def test_contains_dunder(self):
        bf = BloomFilter(16)
        bf.add(3)
        assert 3 in bf

    def test_probe_counter(self):
        bf = BloomFilter(16)
        bf.may_contain(1)
        bf.may_contain(2)
        assert bf.probe_count == 2


class TestRotationIndependence:
    def test_rotated_filters_disagree_on_aliases(self):
        """Per-page filters with rotation should not mirror the global
        filter's false positives (that is the point of bit rotation)."""
        plain = BloomFilter(64, bits_per_entry=6, rotation=0)
        rotated = BloomFilter(64, bits_per_entry=6, rotation=17)
        for key in range(64):
            plain.add(key)
            rotated.add(key)
        probe_range = range(10_000, 40_000)
        fp_plain = {key for key in probe_range if plain.may_contain(key)}
        fp_rotated = {key for key in probe_range if rotated.may_contain(key)}
        if fp_plain or fp_rotated:
            overlap = len(fp_plain & fp_rotated)
            assert overlap < max(len(fp_plain), len(fp_rotated))
