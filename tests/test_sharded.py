"""Sharded index tests: routing, splits, manifest durability, recovery.

The central check is a seeded fuzz against a dict oracle with splitting
enabled — every read (point, batch, scatter-gather range) must be
indistinguishable from single-node semantics no matter how many shards
the keyspace has fissioned into.
"""

import json
import random

import pytest

from repro.core.config import SWAREConfig
from repro.net.sharded import (
    MANIFEST_NAME,
    ShardedConfig,
    ShardedIndexError,
    ShardedSortednessAwareIndex,
    read_manifest,
    recover_sharded,
)

SMALL = SWAREConfig(buffer_capacity=32, page_size=8)


def make_sharded(tmp_path, **kw):
    kw.setdefault("n_shards", 4)
    kw.setdefault("split_threshold", 0)
    kw.setdefault("initial_key_range", (0, 10_000))
    kw.setdefault("index_config", SMALL)
    return ShardedSortednessAwareIndex(
        str(tmp_path / "db"), config=ShardedConfig(**kw)
    )


class TestRouting:
    def test_every_key_routes_even_outside_initial_range(self, tmp_path):
        idx = make_sharded(tmp_path)
        for key in (-(10**15), -1, 0, 2500, 9_999, 10**15):
            idx.put(key, key)
        assert idx.items() == sorted((k, k) for k in
                                     (-(10**15), -1, 0, 2500, 9_999, 10**15))
        assert idx.get(-(10**15)) == -(10**15)
        assert idx.get(10**15) == 10**15
        idx.close()

    def test_initial_boundaries_partition_the_range(self, tmp_path):
        idx = make_sharded(tmp_path, n_shards=4, initial_key_range=(0, 8000))
        bounds = [lower for lower, _sid in idx.shard_map()]
        assert bounds == [None, 2000, 4000, 6000]
        idx.close()

    def test_get_many_preserves_input_order_across_shards(self, tmp_path):
        idx = make_sharded(tmp_path)
        for k in range(0, 10_000, 100):
            idx.put(k, k * 2)
        keys = [9_900, 0, 5_000, 123, 2_500, 9_900]
        assert idx.get_many(keys) == [
            k * 2 if k % 100 == 0 else None for k in keys
        ]
        idx.close()

    def test_range_clamps_to_assigned_ranges(self, tmp_path):
        idx = make_sharded(tmp_path)
        for k in range(0, 10_000, 7):
            idx.put(k, k)
        got = idx.range_query(2_400, 7_700)  # spans three shard boundaries
        assert got == [(k, k) for k in range(0, 10_000, 7) if 2_400 <= k <= 7_700]
        idx.close()


class TestSplits:
    def test_split_fires_and_preserves_contents(self, tmp_path):
        idx = make_sharded(tmp_path, n_shards=1, split_threshold=100)
        expect = {}
        for k in range(400):
            idx.put(k, f"v{k}")
            expect[k] = f"v{k}"
        assert idx.splits >= 1
        assert idx.n_shards >= 2
        assert idx.items() == sorted(expect.items())
        assert idx.range_query(-(10**9), 10**9) == sorted(expect.items())
        idx.close()

    def test_split_is_durable_in_manifest(self, tmp_path):
        idx = make_sharded(tmp_path, n_shards=1, split_threshold=100)
        for k in range(300):
            idx.put(k, k)
        splits = idx.splits
        assert splits >= 1
        doc = read_manifest(str(tmp_path / "db"))
        assert len(doc["shards"]) == idx.n_shards
        assert doc["next_shard_id"] == idx._next_shard_id
        # Every shard dir in the manifest exists with a WAL + checkpoint.
        for row in doc["shards"]:
            shard_dir = tmp_path / "db" / row["dir"]
            assert (shard_dir / "wal.log").exists()
            assert (shard_dir / "checkpoint.db").exists()
        idx.close()

    def test_split_inherits_parent_config(self, tmp_path):
        odd = SWAREConfig(buffer_capacity=24, page_size=8)
        idx = make_sharded(
            tmp_path, n_shards=1, split_threshold=100, index_config=odd
        )
        for k in range(300):
            idx.put(k, k)
        assert idx.n_shards >= 2
        for shard in idx._shards:
            assert shard.config.buffer_capacity == 24
        idx.close()

    def test_all_equal_keys_never_split(self, tmp_path):
        idx = make_sharded(tmp_path, n_shards=1, split_threshold=10)
        for i in range(50):
            idx.put(7, i)  # one live key can't yield a boundary
        assert idx.splits == 0
        assert idx.get(7) == 49
        idx.close()


class TestDivergentConfigs:
    def test_per_shard_configs_applied(self, tmp_path):
        configs = [
            SWAREConfig(buffer_capacity=16, page_size=4),
            SWAREConfig(buffer_capacity=64, page_size=8),
        ]
        idx = ShardedSortednessAwareIndex(
            str(tmp_path / "db"),
            config=ShardedConfig(
                n_shards=2, split_threshold=0, initial_key_range=(0, 1000)
            ),
            shard_configs=configs,
        )
        assert [s.index.buffer.capacity for s in idx._shards] == [16, 64]
        idx.close()
        # ... and survive recovery through the manifest.
        rec, _ = recover_sharded(str(tmp_path / "db"))
        assert [s.index.buffer.capacity for s in rec._shards] == [16, 64]
        rec.close()

    def test_config_count_mismatch_rejected(self, tmp_path):
        with pytest.raises(ShardedIndexError, match="shard configs"):
            ShardedSortednessAwareIndex(
                str(tmp_path / "db"),
                config=ShardedConfig(n_shards=3),
                shard_configs=[SWAREConfig()],
            )


class TestFuzzVsOracle:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mixed_ops_with_splits_match_dict(self, tmp_path, seed):
        idx = make_sharded(
            tmp_path, n_shards=2, split_threshold=150, initial_key_range=(0, 5000)
        )
        oracle = {}
        rng = random.Random(seed)
        for step in range(2500):
            roll = rng.random()
            if roll < 0.55:
                k = rng.randrange(0, 5000)
                idx.put(k, step)
                oracle[k] = step
            elif roll < 0.65:
                items = [
                    (rng.randrange(0, 5000), (step, j)) for j in range(rng.randrange(1, 6))
                ]
                idx.put_many(items)
                oracle.update(items)
            elif roll < 0.78:
                k = rng.randrange(0, 5000)
                idx.delete(k)
                oracle.pop(k, None)
            elif roll < 0.90:
                lo = rng.randrange(0, 5000)
                hi = lo + rng.randrange(0, 800)
                assert idx.range_query(lo, hi) == sorted(
                    (k, v) for k, v in oracle.items() if lo <= k <= hi
                )
            else:
                keys = [rng.randrange(0, 5000) for _ in range(8)]
                assert idx.get_many(keys) == [oracle.get(k) for k in keys]
        assert idx.splits > 0, "fuzz never exercised a split"
        assert idx.items() == sorted(oracle.items())
        idx.close()


class TestRecovery:
    def test_recover_roundtrip_after_checkpoint(self, tmp_path):
        idx = make_sharded(tmp_path, n_shards=3, split_threshold=120)
        oracle = {}
        for k in range(0, 600):
            idx.put(k * 3 % 10_000, k)
            oracle[k * 3 % 10_000] = k
        idx.checkpoint_all()
        idx.close()
        rec, reports = recover_sharded(str(tmp_path / "db"))
        assert set(reports) == {s.shard_id for s in rec._shards}
        assert rec.items() == sorted(oracle.items())
        rec.close()

    def test_recover_replays_wal_tail(self, tmp_path):
        idx = make_sharded(tmp_path, n_shards=2)
        for k in range(100):
            idx.put(k, k)
        idx.checkpoint_all()
        for k in range(100, 150):  # post-checkpoint tail lives only in WALs
            idx.put(k, k)
        idx.delete(5)
        idx.commit()
        idx.close()
        rec, reports = recover_sharded(str(tmp_path / "db"))
        assert sum(r.wal_records_replayed for r in reports.values()) >= 51
        assert rec.get(5) is None
        assert rec.get(149) == 149
        assert rec.items() == [(k, k) for k in range(150) if k != 5]
        rec.close()

    def test_recovered_index_keeps_working_durably(self, tmp_path):
        idx = make_sharded(tmp_path, n_shards=2)
        idx.put(1, "a")
        idx.commit()
        idx.close()
        rec, _ = recover_sharded(str(tmp_path / "db"))
        rec.put(2, "b")
        rec.commit()
        rec.close()
        again, _ = recover_sharded(str(tmp_path / "db"))
        assert again.items() == [(1, "a"), (2, "b")]
        again.close()

    def test_double_create_rejected(self, tmp_path):
        idx = make_sharded(tmp_path)
        idx.close()
        with pytest.raises(ShardedIndexError, match="recover_sharded"):
            make_sharded(tmp_path)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ShardedIndexError, match="MANIFEST"):
            recover_sharded(str(tmp_path / "nothere"))

    def test_corrupt_manifest_rejected(self, tmp_path):
        idx = make_sharded(tmp_path)
        idx.close()
        path = tmp_path / "db" / MANIFEST_NAME
        path.write_text("{ not json")
        with pytest.raises(ShardedIndexError, match="unreadable"):
            recover_sharded(str(tmp_path / "db"))

    def test_manifest_without_edge_shard_rejected(self, tmp_path):
        idx = make_sharded(tmp_path)
        idx.close()
        path = tmp_path / "db" / MANIFEST_NAME
        doc = json.loads(path.read_text())
        for row in doc["shards"]:
            if row["lower"] is None:
                row["lower"] = 0
        path.write_text(json.dumps(doc))
        with pytest.raises(ShardedIndexError, match="-inf"):
            recover_sharded(str(tmp_path / "db"))


class TestCrashedSplitRecovery:
    """A crash between a split's manifest commit and the donor cleanup
    leaves the donor still holding copies of the moved keys. After
    recovery every read path — routing, clamped scatter-gather, and the
    full enumeration — must present each key exactly once, and a further
    split of the donor must not let the stale copies push its median past
    the assigned upper bound (which would corrupt the shard map order).
    """

    def _crash_split(self, tmp_path, n_keys=120, threshold=100):
        idx = make_sharded(tmp_path, n_shards=1, split_threshold=threshold)
        real_write = idx._write_manifest

        def write_then_crash():
            real_write()
            raise RuntimeError("simulated crash after manifest commit")

        idx._write_manifest = write_then_crash
        with pytest.raises(RuntimeError, match="simulated crash"):
            for k in range(n_keys):
                idx.put(k, k)
        idx.close()
        rec, _reports = recover_sharded(str(tmp_path / "db"))
        return rec

    def test_no_duplicates_after_crash_recovered_split(self, tmp_path):
        rec = self._crash_split(tmp_path)
        bounds = [lower for lower, _sid in rec.shard_map()]
        assert len(bounds) == 2 and bounds[0] is None
        split_key = bounds[1]
        full = rec.items()
        # Keys 0..crash-point went in contiguously before the crash; each
        # must be present exactly once with its value (no stale copies).
        assert full == [(k, k) for k in range(len(full))]
        assert len(full) >= split_key + 1  # both sides of the split are live

        # The satellite's routing case: a query range entirely inside the
        # -inf edge shard, below the first real split key.
        edge_only = rec.range_query(0, split_key - 1)
        assert edge_only == [(k, k) for k in range(split_key)]
        # And the full scatter-gather agrees with the enumeration.
        assert rec.range_query(-(1 << 60), 1 << 60) == full
        # Moved keys route to (and are served by) the new owner only.
        assert rec.get(split_key) == split_key
        rec.close()

    def test_followup_split_keeps_shard_map_ordered(self, tmp_path):
        rec = self._crash_split(tmp_path)
        split_key = rec.shard_map()[1][0]
        before = dict(rec.items())
        # The donor still carries the stale copies internally; its next
        # split must pick a boundary strictly inside its assigned range
        # (below split_key), not at/above it.
        for k in range(120, 140):  # routed to the upper shard; donor keys stay
            rec.put(k, k)
        rec.put(-1, -1)  # donor write; its size counter crosses the threshold
        before[-1] = -1
        before.update((k, k) for k in range(120, 140))
        bounds = [lower for lower, _sid in rec.shard_map()]
        assert bounds[0] is None
        real = bounds[1:]
        assert real == sorted(set(real)), f"shard map corrupted: {bounds}"
        assert real[-1] == split_key and all(b < split_key for b in real[:-1])
        assert rec.items() == sorted(before.items())
        rec.close()


class TestCommit:
    def test_commit_syncs_only_dirty_shards(self, tmp_path):
        idx = make_sharded(tmp_path, fsync_policy="batch", n_shards=4)
        idx.put(1, "a")        # shard 0
        idx.put(9_999, "b")    # last shard
        assert idx.commit() == 2
        assert idx.commit() == 0  # nothing dirty afterwards
        idx.close()

    def test_commit_under_always_policy_is_a_noop_sync(self, tmp_path):
        idx = make_sharded(tmp_path, fsync_policy="always")
        idx.put(1, "a")
        assert idx.commit() == 0  # appends synced inline; only clears the set
        idx.close()
