"""Crash-injection acceptance tests for the sharded service layer.

Three layers of the same invariant — *an acknowledged write is never lost*:

1. **Deterministic I/O sweep** (:class:`FaultyEnv`): drive a scripted
   workload (puts, deletes, group commits, a checkpoint, and enough
   volume to force a shard split) through the fault harness, crashing at
   every mutating I/O boundary the sharded stack crosses — WAL appends,
   fsyncs, checkpoint writes, manifest renames, split cleanup. After each
   crash, ``recover_sharded`` must reproduce a state that (a) reflects
   every operation acknowledged before the crash and (b) is a legal
   per-key prefix of the operation log (no invented data, no reordering).

2. **Ack-after-fsync instrumentation**: under ``fsync_policy="batch"``
   the server parks mutating acks until the covering group commit. The
   test spies on every shard WAL's ``sync()`` and asserts, at the moment
   each client ``put`` future resolves, that the records it appended were
   already covered by a sync — the wire-level statement of the invariant.

3. **Real SIGKILL**: boot ``python -m repro serve`` as a subprocess, ack
   a batch of writes over the real socket, ``SIGKILL -9`` the server, and
   recover the root in-process. Every acknowledged key must be there.
"""

import asyncio
import os
import re
import signal
import subprocess
import sys

import pytest

from repro.core.config import SWAREConfig
from repro.net.client import IndexClient
from repro.net.server import IndexServer
from repro.net.sharded import (
    ShardedConfig,
    ShardedIndexError,
    ShardedSortednessAwareIndex,
    recover_sharded,
)
from repro.storage.faults import FaultyEnv, SimulatedCrash

TOMBSTONE = object()
SMALL = SWAREConfig(buffer_capacity=16, page_size=4)


class _OpLog:
    """Per-key operation history + the ack frontier, for crash validation."""

    def __init__(self):
        self.seq = 0
        self.history = {}  # key -> [(seq, value | TOMBSTONE)]
        self.acked_seq = 0  # everything with seq <= this was acknowledged

    def applied(self, key, value):
        self.seq += 1
        self.history.setdefault(key, []).append((self.seq, value))

    def ack(self):
        self.acked_seq = self.seq

    def check(self, recovered: dict) -> None:
        """``recovered`` must be a per-key prefix covering the ack frontier."""
        for key, ops in self.history.items():
            got = recovered.get(key, TOMBSTONE)
            # Prefixes that include every acked op on this key:
            valid = set()
            n_acked = sum(1 for s, _ in ops if s <= self.acked_seq)
            for j in range(n_acked, len(ops) + 1):
                valid.add(TOMBSTONE if j == 0 else ops[j - 1][1])
            assert got in valid, (
                f"key {key}: recovered {got!r}, acked frontier requires one of "
                f"{valid!r} (acked_seq={self.acked_seq}, ops={ops})"
            )
        for key in recovered:
            assert key in self.history, f"recovered invented key {key}"


def _drive(root: str, opener, replace, fsync_policy: str, log: _OpLog) -> None:
    """The scripted workload. Raises SimulatedCrash at the env's boundary."""
    idx = ShardedSortednessAwareIndex(
        root,
        config=ShardedConfig(
            n_shards=2,
            split_threshold=45,  # forces a split mid-script
            fsync_policy=fsync_policy,
            initial_key_range=(0, 200),
            index_config=SMALL,
        ),
        opener=opener,
        replace=replace,
    )
    always = fsync_policy == "always"
    if always:
        log.ack()  # manifest + empty shards are durable once created
    step = 0

    def put(key, value):
        nonlocal step
        # Log the *attempt* before issuing it: a crash mid-append may still
        # persist a complete frame, so an in-flight op is a legal survivor.
        log.applied(key, value)
        idx.put(key, value)
        if always:
            log.ack()  # WAL append fsynced inline -> acked on return
        step += 1

    def delete(key):
        nonlocal step
        log.applied(key, TOMBSTONE)
        idx.delete(key)
        if always:
            log.ack()
        step += 1

    def commit():
        idx.commit()
        log.ack()  # group commit returned -> everything so far is acked

    for k in range(0, 60):
        put(k * 3 % 200, f"a{k}")
        if step % 7 == 0:
            commit()
    commit()
    for k in range(0, 20, 2):
        delete(k * 3 % 200)
    commit()
    idx.checkpoint_all()
    log.ack()
    for k in range(60, 90):
        put(k * 3 % 200, f"b{k}")
    commit()
    idx.close()


class TestCrashSweep:
    @pytest.mark.parametrize("fsync_policy", ["batch", "always"])
    def test_every_io_boundary(self, tmp_path, fsync_policy):
        # Pass 1: count the workload's mutating I/O ops without crashing.
        probe = FaultyEnv(crash_at=None)
        base_log = _OpLog()
        _drive(
            str(tmp_path / "base"), probe.open, probe.replace, fsync_policy, base_log
        )
        total = probe.ops
        assert total > 50, "workload too small to be a meaningful sweep"
        base = recover_sharded(str(tmp_path / "base"))[0]
        base_log.check(dict(base.items()))
        # The split is persisted as extra manifest rows (the in-memory
        # counter does not survive recovery).
        assert base.n_shards > 2, "sweep workload must cross a shard split"
        base.close()

        # Pass 2: crash at every boundary (strided to bound runtime, with
        # both endpoints always included).
        stride = max(1, total // 60)
        crash_points = sorted(set(range(0, total, stride)) | {total - 1})
        for crash_at in crash_points:
            env = FaultyEnv(crash_at=crash_at, seed=crash_at)
            root = str(tmp_path / f"crash{crash_at}")
            log = _OpLog()
            try:
                _drive(root, env.open, env.replace, fsync_policy, log)
            except SimulatedCrash:
                pass
            else:  # pragma: no cover - only if stride math drifts
                continue
            try:
                recovered, _reports = recover_sharded(root)
            except ShardedIndexError:
                # Crashed before the root was ever committed: acceptable
                # only if nothing had been acknowledged yet.
                assert log.acked_seq == 0, "acked writes lost with the root"
                continue
            try:
                log.check(dict(recovered.items()))
                for shard in recovered._shards:
                    check = getattr(shard.index.backend, "check_invariants", None)
                    if check is not None:
                        check()
            finally:
                recovered.close()


class TestAckAfterFsync:
    def test_put_ack_implies_covering_sync(self, tmp_path):
        async def run():
            index = ShardedSortednessAwareIndex(
                str(tmp_path / "db"),
                config=ShardedConfig(
                    n_shards=4,
                    split_threshold=0,
                    fsync_policy="batch",
                    initial_key_range=(0, 4000),
                    index_config=SMALL,
                ),
            )
            # Spy on every shard WAL: record how many appended records the
            # latest sync() covered.
            covered = {}

            def spy(shard):
                original = shard.wal.sync

                def synced():
                    original()
                    covered[shard.shard_id] = shard.wal.records

                return synced

            for shard in index._shards:
                shard.wal.sync = spy(shard)

            server = IndexServer(index, commit_interval=0.001)
            await server.start()
            async with await IndexClient.connect(port=server.port) as client:
                for i in range(120):
                    key = (i * 37) % 4000
                    shard = index._route(key)
                    await client.put(key, i)
                    appended = shard.wal.records
                    # The ack just resolved: the append it covers must have
                    # been fsynced already, else the server leaked an ack
                    # ahead of its group commit.
                    assert covered.get(shard.shard_id, 0) >= appended, (
                        f"ack for key {key} arrived before sync covered its "
                        f"WAL append ({covered.get(shard.shard_id, 0)} < {appended})"
                    )
            await server.stop()

        asyncio.run(run())

    def test_pipelined_batch_acks_also_wait(self, tmp_path):
        async def run():
            index = ShardedSortednessAwareIndex(
                str(tmp_path / "db"),
                config=ShardedConfig(
                    n_shards=2,
                    split_threshold=0,
                    fsync_policy="batch",
                    initial_key_range=(0, 1000),
                    index_config=SMALL,
                ),
            )
            syncs_before_acks = []
            sync_count = 0

            for shard in index._shards:
                original = shard.wal.sync

                def spy(orig=original):
                    def synced():
                        nonlocal sync_count
                        orig()
                        sync_count += 1

                    return synced

                shard.wal.sync = spy()

            server = IndexServer(index, commit_interval=0.001)
            await server.start()
            async with await IndexClient.connect(port=server.port) as client:
                await asyncio.gather(
                    *[client.put_many([(i * 10 + j, j) for j in range(5)])
                      for i in range(20)]
                )
                syncs_before_acks.append(sync_count)
            await server.stop()
            assert syncs_before_acks[0] >= 1  # at least one covering commit

        asyncio.run(run())


SERVE_READY = re.compile(r"serving \d+ shards on [\d.]+:(\d+)")


@pytest.mark.slow
class TestRealSigkill:
    def test_acked_writes_survive_sigkill(self, tmp_path):
        root = str(tmp_path / "db")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                root,
                "--port",
                "0",
                "--shards",
                "4",
                "--fsync",
                "batch",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stderr.readline()
            match = SERVE_READY.search(line)
            assert match, f"server did not come up: {line!r}"
            port = int(match.group(1))

            async def load():
                acked = {}
                async with await IndexClient.connect(port=port) as client:
                    for i in range(300):
                        key = (i * 13) % 2000
                        await client.put(key, f"v{i}")
                        acked[key] = f"v{i}"  # future resolved == acked
                    # Fire a tail burst we do NOT await — these may or may
                    # not land; only the awaited ones above must survive.
                    tail = [
                        asyncio.ensure_future(client.put(5000 + j, j))
                        for j in range(50)
                    ]
                    await asyncio.sleep(0)  # let the frames hit the socket
                    os.kill(proc.pid, signal.SIGKILL)
                    for fut in tail:
                        fut.cancel()
                    await asyncio.gather(*tail, return_exceptions=True)
                return acked

            acked = asyncio.run(load())
            proc.wait(timeout=10)
            assert len(acked) > 0

            recovered, reports = recover_sharded(root)
            try:
                assert len(reports) == 4
                items = dict(recovered.items())
                missing = {
                    k: v for k, v in acked.items() if items.get(k) != v
                }
                assert not missing, (
                    f"{len(missing)} acknowledged writes lost after SIGKILL: "
                    f"{dict(list(missing.items())[:5])}"
                )
            finally:
                recovered.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
